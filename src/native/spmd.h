// The native shared-memory SPMD backend: real threads, real
// synchronization.
//
// Everything else in this repository *simulates* cost — the machines
// charge model time but execute serially. This module is the repo's first
// real-execution path: spawn(p, spmd) runs p program instances on p
// distinct OS threads (one per logical processor, dispatched through
// core::ThreadPool::for_spmd), synchronizing through a real barrier and
// exchanging data through registered variables in shared memory. It
// follows the Bulk/mcbsp execution style (SNIPPETS.md snippets 1-2):
//
//   native::spawn(p, [&](native::World& w) {
//     native::var<Word> x(w, w.pid());
//     auto f = w.get<Word>((w.pid() + 1) % w.nprocs(), x);   // BSP get
//     w.put((w.pid() + 1) % w.nprocs(), Word{7}, x);         // BSP put
//     w.sync();          // barrier; gets read pre-put values, then puts land
//     use(f.value(), x.value());
//   });
//
// Semantics mirror BSPlib supersteps:
//   * var<T> registers one cell per processor under a common slot id; all
//     processors must construct their vars in the same order (the SPMD
//     registration discipline), and a var must exist on every processor
//     before the sync() that precedes its first remote access.
//   * put(dst, v, x) is buffered: it lands in dst's copy of x during the
//     next sync(), after all gets have been resolved.
//   * get(src, x) is buffered: the returned future is filled during the
//     next sync() with src's value as of the start of that sync (before
//     any puts of the same superstep land), matching bsp_get.
//   * Puts are applied in (sender id, issue order) order, so concurrent
//     puts to the same cell resolve deterministically.
//   * sync() is collective: every non-finished processor must call it the
//     same number of times. A processor that returns from the spmd
//     function stops participating (it leaves the barrier, as bsp_end
//     does); a processor that throws poisons the barrier so its siblings
//     unblock (they observe AbortedError) and spawn() rethrows the
//     original exception.
//
// The measured-vs-modeled pipeline on top: native::run_bsp /
// native::run_logp (bsp_exec.h, logp_exec.h) execute the unmodified
// workload-registry programs on this backend, fit.h measures this
// machine's (g, l) / (L, o, G), and bench_native_vs_model overlays
// measured finish times against the simulators' predictions (DESIGN.md
// §12).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "src/core/contracts.h"
#include "src/core/parallel.h"
#include "src/core/types.h"

namespace bsplogp::native {

/// Thrown out of sync()/arrive_and_wait() on processors parked in a
/// barrier that a sibling poisoned (because it failed). spawn() treats it
/// as secondary: the sibling's original exception is what propagates.
class AbortedError : public std::runtime_error {
 public:
  AbortedError() : std::runtime_error("native: SPMD sibling failed") {}
};

/// A poisonable, droppable cyclic barrier for `parties` threads.
/// Mutex/condvar, sense counted by phase: no thread can lap another, and a
/// poisoned barrier releases current and future waiters with AbortedError
/// instead of deadlocking the group on a failed sibling.
class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties) {
    BSPLOGP_EXPECTS(parties >= 1);
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all current parties arrived (throws AbortedError if the
  /// barrier is or becomes poisoned).
  void arrive_and_wait();

  /// Permanently removes one party (a processor finishing its program).
  /// If the remaining waiters now form a full complement, they release.
  void drop();

  /// Poisons the barrier: every current and future arrive_and_wait()
  /// throws AbortedError.
  void poison();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int parties_;
  int arrived_ = 0;
  std::uint64_t phase_ = 0;
  bool poisoned_ = false;
};

namespace detail {

/// One buffered communication: resolved against the target's registered
/// cell during sync(). `apply` either writes the put value into the cell
/// or copies the cell into a future's buffer.
struct PendingOp {
  ProcId target = -1;
  std::size_t slot = 0;
  std::function<void(void*)> apply;
};

/// State shared by all processors of one spawn(): the barrier, the
/// registration tables and the per-sender communication queues. Queues are
/// single-writer (the owning processor); cross-thread reads happen only
/// between sync()'s barrier waves, which provide the happens-before.
struct WorldState {
  explicit WorldState(ProcId p)
      : nprocs(p),
        barrier(p),
        slots(static_cast<std::size_t>(p)),
        puts(static_cast<std::size_t>(p)),
        gets(static_cast<std::size_t>(p)) {}

  const ProcId nprocs;
  Barrier barrier;
  std::vector<std::vector<void*>> slots;       // [pid][slot] -> cell
  std::vector<std::vector<PendingOp>> puts;    // [sender pid]
  std::vector<std::vector<PendingOp>> gets;    // [requester pid]
};

}  // namespace detail

template <typename T>
class var;

/// The value a get() resolves to at the next sync(). Shared-buffer
/// semantics (copies observe the same resolution), value() is valid after
/// that sync.
template <typename T>
class future {
 public:
  future() : buffer_(std::make_shared<T>()) {}

  [[nodiscard]] const T& value() const { return *buffer_; }

 private:
  template <typename U>
  friend class var;
  friend class World;

  [[nodiscard]] std::shared_ptr<T> buffer() const { return buffer_; }

  std::shared_ptr<T> buffer_;
};

/// One processor's view of the SPMD world: identity, synchronization, and
/// the registered-variable communication primitives. Valid only inside the
/// spmd function it is passed to; not thread-safe (it *is* the thread).
class World {
 public:
  [[nodiscard]] ProcId pid() const { return pid_; }
  [[nodiscard]] ProcId nprocs() const { return state_->nprocs; }

  /// The collective superstep boundary: barrier, then resolve all buffered
  /// gets (reading pre-put values), then apply all buffered puts in
  /// (sender id, issue order) order, then release everyone into the next
  /// superstep. Three barrier waves total.
  void sync();

  /// Raw barrier without communication resolution: the building block for
  /// executors (bsp_exec) that manage their own exchange buffers. Buffered
  /// puts/gets stay buffered.
  void barrier() { state_->barrier.arrive_and_wait(); }

  /// Buffers value `v` for delivery into `dst`'s copy of `x` at the next
  /// sync(). `x` names the caller's own copy; the slot id addresses the
  /// destination copy.
  template <typename T>
  void put(ProcId dst, T v, const var<T>& x);

  /// Buffers a read of `src`'s copy of `x`; the returned future resolves
  /// at the next sync() with the value before that sync's puts.
  template <typename T>
  [[nodiscard]] future<T> get(ProcId src, const var<T>& x);

  /// Constructed by spawn(); binds processor `pid`'s view of `state`.
  World(detail::WorldState* state, ProcId pid) : state_(state), pid_(pid) {}
  World(const World&) = delete;
  World& operator=(const World&) = delete;

 private:
  template <typename T>
  friend class var;

  [[nodiscard]] std::size_t register_slot(void* cell) {
    auto& table = state_->slots[static_cast<std::size_t>(pid_)];
    table.push_back(cell);
    return table.size() - 1;
  }
  void release_slot(std::size_t slot) {
    state_->slots[static_cast<std::size_t>(pid_)][slot] = nullptr;
  }

  detail::WorldState* state_;
  ProcId pid_;
};

/// A registered per-processor cell (Bulk-style). Every processor holds its
/// own copy; constructing one registers the local copy under the next slot
/// id, so construction order must be identical across processors.
template <typename T>
class var {
 public:
  explicit var(World& world, T init = T{})
      : world_(world), value_(std::move(init)),
        slot_(world.register_slot(&value_)) {}
  ~var() { world_.release_slot(slot_); }

  var(const var&) = delete;
  var& operator=(const var&) = delete;

  [[nodiscard]] T& value() { return value_; }
  [[nodiscard]] const T& value() const { return value_; }
  [[nodiscard]] std::size_t slot() const { return slot_; }

 private:
  World& world_;
  T value_;
  std::size_t slot_;
};

template <typename T>
void World::put(ProcId dst, T v, const var<T>& x) {
  BSPLOGP_EXPECTS(dst >= 0 && dst < nprocs());
  state_->puts[static_cast<std::size_t>(pid_)].push_back(detail::PendingOp{
      dst, x.slot(),
      [v = std::move(v)](void* cell) { *static_cast<T*>(cell) = v; }});
}

template <typename T>
future<T> World::get(ProcId src, const var<T>& x) {
  BSPLOGP_EXPECTS(src >= 0 && src < nprocs());
  future<T> f;
  state_->gets[static_cast<std::size_t>(pid_)].push_back(detail::PendingOp{
      src, x.slot(),
      [buf = f.buffer()](void* cell) { *buf = *static_cast<T*>(cell); }});
  return f;
}

/// Runs `spmd` as p concurrent program instances, one per OS thread
/// (core::ThreadPool::for_spmd), and blocks until all return. With a null
/// pool a transient pool of p - 1 workers is spawned; a caller-provided
/// pool must have at least p - 1 workers and is reused across spawns
/// (the fitting layer and benches amortize thread start-up this way).
/// If an instance throws, the barrier is poisoned so siblings unblock,
/// and the first such exception is rethrown here.
void spawn(ProcId nprocs, const std::function<void(World&)>& spmd,
           core::ThreadPool* pool = nullptr);

}  // namespace bsplogp::native

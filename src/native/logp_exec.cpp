#include "src/native/logp_exec.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <coroutine>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "src/core/contracts.h"
#include "src/core/frame_arena.h"
#include "src/logp/task.h"
#include "src/native/spmd.h"
#include "src/trace/event.h"

namespace bsplogp::native {
namespace {

struct RunState;

/// The native Proc implementation: a mailbox (mutex + condvar + staging
/// deque, the only cross-thread state) plus a one-slot pending-operation
/// record. The issue_* hooks only record; the owning thread's drive() loop
/// resolves the operation and resumes the coroutine, so resolution code
/// never runs inside an await_suspend and blocking waits happen in plain
/// driver code.
class NativeProc final : public logp::Proc {
 public:
  NativeProc(RunState& run, ProcId id) : Proc(id), run_(run) {}

  [[nodiscard]] ProcId nprocs() const override;
  [[nodiscard]] const logp::Params& params() const override;

  /// Runs `program` on this processor to completion (called on the
  /// processor's own thread).
  void drive(const logp::ProgramFn& program);

  // Mailbox: senders push under mu and signal cv; the owner drains into
  // the inherited model input buffer (inbox_), which only the owner
  // touches.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> arrivals;

  // Owner-thread-only tallies, summed by run_logp after the join.
  std::int64_t sent = 0;
  std::int64_t acquired_n = 0;
  std::vector<Message> acquired_log;
  Time final_clock = 0;

 private:
  enum class Op { None, Send, Recv, Wait };

  void issue_send(Message m, std::coroutine_handle<> frame) override {
    op_ = Op::Send;
    out_ = m;
    frame_ = frame;
  }
  void issue_recv(std::coroutine_handle<> frame) override {
    op_ = Op::Recv;
    frame_ = frame;
  }
  void issue_wait(Time target, std::coroutine_handle<> frame) override {
    op_ = Op::Wait;
    wait_target_ = target;
    frame_ = frame;
  }

  void resolve_send();
  void resolve_recv();

  RunState& run_;
  Op op_ = Op::None;
  Message out_{};
  Time wait_target_ = 0;
  std::coroutine_handle<> frame_;
};

/// State shared by the p processors of one run.
struct RunState {
  RunState(ProcId p, const logp::Params& prm, const NativeLogpOptions& opts)
      : nprocs(p), params(prm), options(opts) {
    for (ProcId i = 0; i < p; ++i) procs.emplace_back(*this, i);
  }

  /// Unparks every processor blocked in recv so a failed sibling cannot
  /// leave the rest hanging until their timeouts.
  void abort_all() {
    aborted.store(true, std::memory_order_release);
    for (NativeProc& p : procs) {
      // Empty critical section: a waiter between its predicate check and
      // its park must observe either the flag or this notification.
      { const std::lock_guard<std::mutex> lock(p.mu); }
      p.cv.notify_all();
    }
  }

  const ProcId nprocs;
  const logp::Params params;
  const NativeLogpOptions options;
  std::deque<NativeProc> procs;  // deque: Proc is neither movable nor copyable
  std::atomic<bool> aborted{false};
};

ProcId NativeProc::nprocs() const { return run_.nprocs; }
const logp::Params& NativeProc::params() const { return run_.params; }

void NativeProc::resolve_send() {
  // Model bookkeeping exactly as prescribed (o preparation, G spacing)...
  const Time t = earliest_submit();
  last_submit_ = t;
  has_submitted_ = true;
  clock_ = t;
  // ...but submission, acceptance and delivery coincide: stage directly
  // into the destination's mailbox.
  auto& dst = run_.procs[static_cast<std::size_t>(out_.dst)];
  {
    const std::lock_guard<std::mutex> lock(dst.mu);
    dst.arrivals.push_back(out_);
  }
  dst.cv.notify_one();
  sent += 1;
  if (run_.options.sink != nullptr) {
    run_.options.sink->emit(trace::Event::submit(id_, t, out_.dst));
    run_.options.sink->emit(trace::Event::delivery(out_.dst, t, id_));
  }
}

void NativeProc::resolve_recv() {
  {
    std::unique_lock<std::mutex> lock(mu);
    while (!arrivals.empty()) {
      inbox_.push_back(arrivals.front());
      arrivals.pop_front();
    }
    if (inbox_.empty()) {
      const bool signalled =
          cv.wait_for(lock, run_.options.recv_timeout, [&] {
            return run_.aborted.load(std::memory_order_acquire) ||
                   !arrivals.empty();
          });
      if (run_.aborted.load(std::memory_order_acquire)) throw AbortedError();
      if (!signalled)
        throw std::runtime_error(
            "native: recv timed out with an empty input buffer (deadlock?)");
      while (!arrivals.empty()) {
        inbox_.push_back(arrivals.front());
        arrivals.pop_front();
      }
    }
  }
  const Message m = inbox_.front();
  inbox_.pop_front();
  const Time t = earliest_acquire();
  last_acquire_ = t;
  has_acquired_ = true;
  clock_ = t + run_.params.o;
  acquired_ = m;
  acquired_n += 1;
  if (run_.options.acquired != nullptr) acquired_log.push_back(m);
  if (run_.options.sink != nullptr)
    run_.options.sink->emit(trace::Event::acquire(id_, t, m.src));
}

void NativeProc::drive(const logp::ProgramFn& program) {
  // Frame recycling per processor thread: the root frame and any sub-task
  // frames a program spawns allocate from (and return to) this arena. The
  // arena outlives `root` (declared before it), and every frame dies on
  // this thread before drive() returns — the DESIGN.md §15 lifetime rule.
  core::FrameArena arena;
  const core::FrameArena::Scope frame_scope(&arena);
  logp::Task<> root = program(*this);
  BSPLOGP_EXPECTS(root.valid());
  std::coroutine_handle<> next = root.handle();
  while (true) {
    op_ = Op::None;
    next.resume();
    if (root.done()) {
      root.rethrow_if_failed();
      break;
    }
    // Not done and suspended: exactly one operation awaiter recorded
    // itself (children start by symmetric transfer and never park at their
    // initial suspend).
    BSPLOGP_ASSERT(op_ != Op::None);
    switch (op_) {
      case Op::Send:
        resolve_send();
        break;
      case Op::Recv:
        resolve_recv();
        break;
      case Op::Wait:
        clock_ = std::max(clock_, wait_target_);
        break;
      case Op::None:
        break;
    }
    next = frame_;
  }
  final_clock = clock_;
}

}  // namespace

NativeLogpStats run_logp(std::span<const logp::ProgramFn> programs,
                         const logp::Params& params,
                         const NativeLogpOptions& options) {
  params.validate();
  BSPLOGP_EXPECTS(!programs.empty());
  for (const logp::ProgramFn& fn : programs) BSPLOGP_EXPECTS(fn != nullptr);
  const auto p = static_cast<ProcId>(programs.size());

  std::optional<core::ThreadPool> transient;
  core::ThreadPool* pool = options.pool;
  if (pool == nullptr) {
    transient.emplace(p - 1);
    pool = &*transient;
  }
  BSPLOGP_EXPECTS(pool->workers() + 1 >= p);

  RunState run(p, params, options);

  if (options.sink != nullptr)
    options.sink->run_begin(trace::RunInfo{"native.logp", p, params.L,
                                           params.o, params.G,
                                           params.capacity(), 0, 0});

  std::mutex error_mu;
  std::exception_ptr first_error;
  const auto t0 = std::chrono::steady_clock::now();
  pool->for_spmd(static_cast<std::size_t>(p), [&](std::size_t i) {
    try {
      run.procs[i].drive(programs[i]);
    } catch (const AbortedError&) {
      // Secondary failure: a sibling aborted us. Its exception wins.
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (first_error == nullptr) first_error = std::current_exception();
      }
      run.abort_all();
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  if (first_error != nullptr) std::rethrow_exception(first_error);

  NativeLogpStats stats;
  stats.wall_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count();
  if (options.acquired != nullptr)
    options.acquired->assign(static_cast<std::size_t>(p), {});
  for (ProcId i = 0; i < p; ++i) {
    NativeProc& pr = run.procs[static_cast<std::size_t>(i)];
    stats.messages_sent += pr.sent;
    stats.messages_acquired += pr.acquired_n;
    stats.model_finish_time = std::max(stats.model_finish_time, pr.final_clock);
    if (options.acquired != nullptr)
      (*options.acquired)[static_cast<std::size_t>(i)] =
          std::move(pr.acquired_log);
  }
  if (options.sink != nullptr) options.sink->run_end(stats.model_finish_time);
  return stats;
}

NativeLogpStats run_logp(ProcId nprocs, const logp::ProgramFn& program,
                         const logp::Params& params,
                         const NativeLogpOptions& options) {
  BSPLOGP_EXPECTS(nprocs >= 1);
  const std::vector<logp::ProgramFn> programs(
      static_cast<std::size_t>(nprocs), program);
  return run_logp(programs, params, options);
}

}  // namespace bsplogp::native

// Native execution of BSP programs: the same bsp::ProcProgram vector that
// runs on bsp::Machine (serial, simulated) or under xsim::BspOnLogp
// (Theorem 2) runs here with one real thread per processor and a real
// barrier per superstep.
//
// The executor is the parallel twin of bsp::Machine::run, phase for phase:
// compute (each thread steps its own program against its own input pool),
// barrier, exchange (each thread assembles its next input pool by scanning
// the output pools in sender-id order — exactly InboxOrder::SourceOrder),
// barrier, swap. Halted processors are never stepped again but keep
// receiving (the model delivers regardless), and the run ends in the
// superstep where the last processor halts, as in the Machine.
//
// Because the phases are identical and the model parameters (g, l) never
// steer a BSP execution (they only price it — see bsp/params.h), the model
// accounting here is not merely close to the simulator's, it is EQUAL:
// NativeBspStats::model must match bsp::Machine::run's RunStats field for
// field — finish_time, supersteps, messages, per-superstep (w_s, h_s),
// proc_finish, everything. The differential suite asserts exactly that,
// which pins the native executor and the simulator to each other; the
// only thing native execution adds is a wall clock.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "src/bsp/params.h"
#include "src/bsp/program.h"
#include "src/core/parallel.h"
#include "src/core/types.h"
#include "src/trace/sink.h"

namespace bsplogp::native {

struct NativeBspOptions {
  /// Thread pool to run on (needs >= p - 1 workers); null spawns a
  /// transient pool.
  core::ThreadPool* pool = nullptr;
  /// Observer for SuperstepBegin/End events. Only processor 0's thread
  /// emits, and run_begin/run_end bracket the spawn, so calls are totally
  /// ordered: an ordinary (non-thread-safe) sink is fine here. Not owned.
  trace::TraceSink* sink = nullptr;
  /// Cost-model parameters for the accounting (identical role to
  /// bsp::Machine's).
  bsp::Params params{};
  std::int64_t max_supersteps = 1'000'000;
};

struct NativeBspStats {
  /// The full model accounting, field-for-field equal to what
  /// bsp::Machine::run(programs) returns for the same programs and params.
  bsp::RunStats model;
  /// Real elapsed time of the run.
  double wall_ns = 0;
};

/// Runs one program per processor in lockstep supersteps on real threads.
/// The caller retains ownership of the programs and reads results out of
/// them afterwards, exactly as with bsp::Machine::run. Throws what a
/// program throws (siblings are unblocked via barrier poisoning).
[[nodiscard]] NativeBspStats run_bsp(
    std::span<const std::unique_ptr<bsp::ProcProgram>> programs,
    const NativeBspOptions& options = {});

}  // namespace bsplogp::native

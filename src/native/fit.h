// Measuring this machine's BSP and LogP parameters, Culler-style.
//
// The paper's models are parameterized abstractions of a real machine;
// this layer closes the loop by measuring, on the shared-memory backend
// (spmd.h), the constants the models postulate:
//
//   BSP   l — barrier synchronization time: wall time per empty
//             barrier-only superstep, measured over many repetitions
//             with a warm thread pool;
//         g — per-message bandwidth gap: the SLOPE of superstep wall
//             time in h, from full-exchange supersteps at a small and a
//             large h (the intercept — barrier cost, fixed overheads —
//             cancels in the difference, as in the standard BSP
//             benchmarking methodology).
//   LogP  o — send overhead: wall time per uncontended staging of one
//             message into a destination queue (lock, push, unlock);
//         G — gap: sustained per-message cost at a sender flooding one
//             destination — the reciprocal of the achievable injection
//             rate;
//         L — latency: half the ping-pong round trip minus the two
//             overheads (rtt = 2L + 2o for a one-word message, so
//             L = rtt/2 - o... the classic decomposition charges o at
//             each end: L = rtt/2 - 2o; we follow the classic form).
//
// Everything is reported in nanoseconds as doubles (Fit structs); the
// params() converters round to the models' integer step units at
// 1 step = 1 ns and clamp into each model's validity domain
// (bsp::Params: g, l >= 1; logp::Params: max{2, o} <= G <= L), so a fit
// is always directly usable as machine parameters. These measurements
// are wall-clock and machine-dependent by design — nothing here is
// deterministic, which is why the fitting layer lives outside the
// simulators and is exercised by bench_native_vs_model rather than by
// equivalence tests.
#pragma once

#include "src/bsp/params.h"
#include "src/core/parallel.h"
#include "src/core/types.h"
#include "src/logp/params.h"

namespace bsplogp::native {

struct BspFit {
  ProcId p = 0;
  double l_ns = 0;  // barrier cost per superstep
  double g_ns = 0;  // per-message cost (slope in h)

  /// Rounded into bsp::Params at 1 step = 1 ns (clamped to g, l >= 1).
  [[nodiscard]] bsp::Params params() const;
};

struct LogpFit {
  ProcId p = 0;
  double L_ns = 0;  // one-way latency
  double o_ns = 0;  // per-message processor overhead
  double G_ns = 0;  // per-message gap (1/injection rate)

  /// Rounded into logp::Params at 1 step = 1 ns, clamped into the model's
  /// validity domain max{2, o} <= G <= L.
  [[nodiscard]] logp::Params params() const;
};

/// Measurement effort knobs. The defaults suit the full bench; smoke runs
/// scale them down.
struct FitOptions {
  /// Barrier-only supersteps timed for l.
  int barrier_reps = 400;
  /// Full-exchange supersteps timed per h point for g.
  int exchange_reps = 30;
  /// The two h values whose difference yields the slope.
  Time h_lo = 4;
  Time h_hi = 64;
  /// Ping-pong round trips timed for L.
  int pingpong_reps = 400;
  /// Messages in the G flood.
  int flood_msgs = 4000;
  /// Uncontended stagings timed for o.
  int overhead_reps = 20000;
};

/// Measures (g, l) at `p` processors. Supply a warm pool with >= p - 1
/// workers to keep thread start-up out of the numbers; null spawns a
/// transient pool per measurement.
[[nodiscard]] BspFit fit_bsp(ProcId p, core::ThreadPool* pool = nullptr,
                             const FitOptions& options = {});

/// Measures (L, o, G) at `p` processors (the traffic microbenchmarks use
/// two of them; p is recorded for reporting).
[[nodiscard]] LogpFit fit_logp(ProcId p, core::ThreadPool* pool = nullptr,
                               const FitOptions& options = {});

}  // namespace bsplogp::native

#include "src/native/bsp_exec.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "src/core/contracts.h"
#include "src/native/spmd.h"
#include "src/trace/event.h"

namespace bsplogp::native {

NativeBspStats run_bsp(
    std::span<const std::unique_ptr<bsp::ProcProgram>> programs,
    const NativeBspOptions& options) {
  BSPLOGP_EXPECTS(!programs.empty());
  for (const auto& prog : programs) BSPLOGP_EXPECTS(prog != nullptr);
  options.params.validate();
  BSPLOGP_EXPECTS(options.max_supersteps >= 1);
  const auto p = static_cast<ProcId>(programs.size());
  const auto np = static_cast<std::size_t>(p);

  // Shared superstep state. All of it is slot-disjoint (each processor
  // writes only index [me]) except the reduction results, which only
  // processor 0 writes; the barrier waves between phases provide the
  // happens-before in both directions.
  std::vector<std::vector<Message>> inboxes(np);
  std::vector<std::vector<Message>> outboxes(np);
  std::vector<std::vector<Message>> next_inboxes(np);
  std::vector<Time> works(np, 0);
  std::vector<char> halted(np, 0);
  std::vector<std::int64_t> halt_step(np, -1);
  bool any_continue = false;

  bsp::RunStats stats;
  stats.proc_finish.assign(np, 0);

  if (options.sink != nullptr)
    options.sink->run_begin(trace::RunInfo{"native.bsp", p, 0, 0, 0, 0,
                                           options.params.g,
                                           options.params.l});

  const auto t0 = std::chrono::steady_clock::now();
  spawn(
      p,
      [&](World& w) {
        const ProcId me = w.pid();
        const auto m = static_cast<std::size_t>(me);
        for (std::int64_t step = 0;; ++step) {
          if (step >= options.max_supersteps) {
            if (me == 0) stats.hit_superstep_limit = true;
            break;
          }
          if (me == 0 && options.sink != nullptr)
            options.sink->emit(
                trace::Event::superstep_begin(stats.finish_time, step));

          // --- Local computation phase (own slots only).
          if (halted[m] == 0) {
            Time work = static_cast<Time>(inboxes[m].size());  // extraction
            bsp::Ctx ctx(me, p, step, inboxes[m], outboxes[m], work);
            const bool wants_more = programs[m]->step(ctx);
            if (!wants_more) {
              halted[m] = 1;
              halt_step[m] = step;
            }
            works[m] = work;
          } else {
            works[m] = 0;  // never re-stepped, contributes no work
          }
          w.barrier();  // every output pool is complete

          // --- Communication phase: each processor assembles its own next
          // input pool by scanning senders in id order — this IS
          // InboxOrder::SourceOrder, the simulator's deterministic pool
          // order.
          std::vector<Message>& next = next_inboxes[m];
          next.clear();
          for (std::size_t src = 0; src < np; ++src)
            for (const Message& msg : outboxes[src])
              if (msg.dst == me) next.push_back(msg);

          // Processor 0 runs the model accounting, reproducing
          // bsp::Machine::run's arithmetic on the same inputs.
          if (me == 0) {
            bsp::SuperstepCost cost;
            for (const Time wk : works) cost.w = std::max(cost.w, wk);
            Time sent_max = 0;
            std::vector<Time> received(np, 0);
            for (const auto& outbox : outboxes) {
              sent_max = std::max(sent_max, static_cast<Time>(outbox.size()));
              for (const Message& msg : outbox)
                received[static_cast<std::size_t>(msg.dst)] += 1;
            }
            Time recv_max = 0;
            for (const Time r : received) recv_max = std::max(recv_max, r);
            cost.h = std::max(sent_max, recv_max);
            for (const auto& outbox : outboxes)
              stats.messages += static_cast<std::int64_t>(outbox.size());

            const Time before = stats.finish_time;
            stats.finish_time += cost.total(options.params);
            stats.supersteps += 1;
            stats.trace.push_back(cost);
            for (std::size_t i = 0; i < np; ++i)
              if (halt_step[i] == step)
                stats.proc_finish[i] = stats.finish_time;
            any_continue = false;
            for (const char h : halted)
              if (h == 0) any_continue = true;
            if (options.sink != nullptr)
              options.sink->emit(trace::Event::superstep_end(
                  stats.finish_time, before, cost.w, cost.h, step));
          }
          w.barrier();  // pools assembled, accounting published

          outboxes[m].clear();
          std::swap(inboxes[m], next_inboxes[m]);
          if (!any_continue) break;  // same value on every processor
        }
      },
      options.pool);
  const auto t1 = std::chrono::steady_clock::now();

  for (ProcId i = 0; i < p; ++i)
    if (halted[static_cast<std::size_t>(i)] == 0)
      stats.blocked_procs.push_back(i);
  if (options.sink != nullptr) options.sink->run_end(stats.finish_time);

  NativeBspStats out;
  out.model = std::move(stats);
  out.wall_ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  return out;
}

}  // namespace bsplogp::native

#include "src/farm/worker.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

namespace bsplogp::farm {

namespace {

// Parses the die-after crash hook (see worker.h). -1 = disabled.
std::int64_t parse_die_after() {
  const char* spec = std::getenv("BSPLOGP_FARM_WORKER_DIE_AFTER");
  if (spec == nullptr || *spec == '\0') return -1;
  std::string s(spec);
  const std::size_t colon = s.find(':');
  if (colon != std::string::npos) {
    const char* mine = std::getenv("BSPLOGP_FARM_WORKER_INDEX");
    if (mine == nullptr || s.substr(0, colon) != mine) return -1;
    s = s.substr(colon + 1);
  }
  char* end = nullptr;
  const long long k = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || k < 1) return -1;
  return k;
}

}  // namespace

FarmWorkerDispatcher::FarmWorkerDispatcher(WorkerOptions opt)
    : opt_(std::move(opt)), die_after_(parse_die_after()) {}

FarmWorkerDispatcher::FarmWorkerDispatcher(WorkerOptions opt,
                                           int connected_fd)
    : opt_(std::move(opt)), sock_(connected_fd),
      die_after_(parse_die_after()) {}

void FarmWorkerDispatcher::say(const std::string& line) {
  if (opt_.diag) opt_.diag(line);
}

void FarmWorkerDispatcher::fatal(const std::string& why) {
  say("farm worker: " + why);
  std::exit(3);
}

void FarmWorkerDispatcher::ensure_ready() {
  if (ready_) return;
  if (!sock_.valid()) {
    // The spawn race: the server listens before forking us, but a
    // multi-host worker may beat its server to the port. A short dial
    // loop covers both without a sleepy first connect.
    for (int attempt = 0; attempt < 20 && !sock_.valid(); ++attempt) {
      if (attempt > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      sock_ = tcp_connect(opt_.host, opt_.port);
    }
    if (!sock_.valid())
      fatal("cannot connect to " + opt_.host + ":" +
            std::to_string(opt_.port));
  }
  if (!write_frame(sock_.fd(), make_hello(opt_.build_id, opt_.bench)))
    fatal("handshake write failed");
  Frame f;
  if (!read_frame(sock_.fd(), &f)) fatal("server closed during handshake");
  if (f.type == Type::kReject) {
    WireReader r(f.payload);
    fatal("rejected by server: " + r.str());
  }
  // A respawned worker can dial in just as the bench finishes; the
  // server's farewell SHUTDOWN is then the handshake reply. Not an error.
  if (f.type == Type::kShutdown) std::exit(0);
  if (f.type != Type::kWelcome) fatal("unexpected handshake reply");
  ready_ = true;
  say("farm worker: joined " + opt_.host + ":" + std::to_string(opt_.port));
}

void FarmWorkerDispatcher::serve_range(const GridView& grid,
                                       std::uint64_t begin,
                                       std::uint64_t end) {
  const auto b = static_cast<std::size_t>(begin);
  const auto e = static_cast<std::size_t>(end);
  // Compute the whole range first (split across local jobs — the same
  // chunking a local sweep uses, shifted by the range offset), then
  // stream the results in index order.
  const std::size_t len = e - b;
  const auto compute = [&](std::size_t lo, std::size_t hi) {
    grid.compute_range(b + lo, b + hi);
  };
  if (opt_.pool != nullptr && opt_.jobs > 1)
    opt_.pool->for_ranges(len, compute);
  else
    core::parallel_for_ranges(len, opt_.jobs, compute);
  for (std::size_t i = b; i < e; ++i) {
    if (!write_frame(sock_.fd(), make_result(i, grid.reencode(i))))
      fatal("server connection lost");
    if (die_after_ > 0 && ++results_sent_ >= die_after_) ::_exit(9);
  }
}

void FarmWorkerDispatcher::run(const GridView& grid) {
  ensure_ready();
  ++seq_;
  Frame f;
  if (!read_frame(sock_.fd(), &f)) fatal("server connection lost");
  if (f.type == Type::kShutdown) {
    say("farm worker: server shut down");
    std::exit(0);
  }
  {
    WireReader r(f.payload);
    const std::uint64_t seq = r.u64();
    const std::uint64_t n = r.u64();
    if (f.type != Type::kSweep || !r.ok() || !r.done())
      fatal("expected SWEEP");
    // A desynced stream can only fill the grid with wrong points; die
    // loudly and let the server re-queue.
    if (seq != seq_ || n != grid.n)
      fatal("sweep desync: got sweep " + std::to_string(seq) + "/" +
            std::to_string(n) + " points, expected " + std::to_string(seq_) +
            "/" + std::to_string(grid.n));
  }
  for (;;) {
    if (!read_frame(sock_.fd(), &f)) fatal("server connection lost");
    switch (f.type) {
      case Type::kRange: {
        WireReader r(f.payload);
        const std::uint64_t b = r.u64();
        const std::uint64_t e = r.u64();
        if (!r.ok() || !r.done() || b >= e || e > grid.n)
          fatal("bad RANGE");
        serve_range(grid, b, e);
        break;
      }
      case Type::kResult: {
        WireReader r(f.payload);
        const std::uint64_t index = r.u64();
        const std::string payload = r.rest();
        if (!r.ok() || index >= grid.n ||
            !grid.install(static_cast<std::size_t>(index), payload))
          fatal("bad broadcast result");
        break;
      }
      case Type::kSweepDone: {
        WireReader r(f.payload);
        if (r.u64() != seq_ || !r.ok()) fatal("bad SWEEP_DONE");
        return;
      }
      case Type::kShutdown:
        say("farm worker: server shut down");
        std::exit(0);
      default:
        fatal("unexpected frame mid-sweep");
    }
  }
}

}  // namespace bsplogp::farm

// Parse of the harness-facing farm flags (DESIGN.md §13):
//
//   --farm N[,timeout=S][,respawns=R][,grace=S]
//       spawn-per-worker localhost mode: the bench becomes the
//       sweep-server, listens on an ephemeral 127.0.0.1 port, and spawns
//       N copies of itself as sweep-workers (`--connect` is added, --json
//       and --trace are stripped).
//
//   --farm listen:PORT[,workers=N][,timeout=S][,grace=S]
//       multi-host mode: the bench becomes the sweep-server on PORT (all
//       interfaces) and waits up to the grace period for N workers; start
//       the workers yourself with `bench_foo --connect host:PORT` (same
//       build, same flags).
//
//   --connect HOST:PORT
//       sweep-worker mode: the bench runs its normal main, but every
//       harness sweep serves index ranges assigned by the server instead
//       of computing the whole grid.
//
// Knobs: timeout = seconds without progress before an assigned range is
// re-queued (default 30); respawns = spawn-mode worker respawn budget
// (default 4); grace = seconds to wait for a first/replacement worker
// before the coordinator computes the remainder itself (default 10).
#pragma once

#include <string>

namespace bsplogp::farm {

struct Spec {
  enum class Role { kNone, kServer, kWorker };

  Role role = Role::kNone;

  // Server (either mode).
  int spawn_workers = 0;     // > 0: spawn-per-worker localhost mode
  std::string listen_host;   // "127.0.0.1" when spawning, "" = all ifaces
  int listen_port = 0;       // 0 = ephemeral
  int expect_workers = 0;    // listen mode: workers to wait for up front
  double timeout_s = 30.0;   // per-assignment progress deadline
  double grace_s = 10.0;     // workerless wait before local fallback
  int respawns = 4;          // spawn-mode respawn budget

  // Worker.
  std::string connect_host;
  int connect_port = 0;
};

/// One line enumerating every valid --farm form, for usage/error text.
[[nodiscard]] const char* farm_spec_forms();

/// Parses a --farm value. On failure returns false and fills *error with
/// a complaint that enumerates the valid forms.
[[nodiscard]] bool parse_farm_spec(const std::string& s, Spec* out,
                                   std::string* error);

/// Parses a --connect value (HOST:PORT). Same error contract.
[[nodiscard]] bool parse_connect_spec(const std::string& s, Spec* out,
                                      std::string* error);

}  // namespace bsplogp::farm

// Thin RAII layer over the POSIX TCP sockets the sweep farm uses
// (DESIGN.md §13). Policy-free: connect/listen/accept/poll and nothing
// else — protocol framing lives in wire.h, recovery in server.cpp.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace bsplogp::farm {

/// Owns one file descriptor; -1 means empty.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.release()) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.release();
    }
    return *this;
  }

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close();

 private:
  int fd_ = -1;
};

/// Parses "host:port" (host may be a name or dotted quad). False on a
/// missing colon or a port outside [1, 65535].
[[nodiscard]] bool parse_host_port(const std::string& spec, std::string* host,
                                   int* port);

/// Blocking TCP connect; invalid Socket on failure.
[[nodiscard]] Socket tcp_connect(const std::string& host, int port);

/// Listening socket bound to `host` (empty = all interfaces). `port` 0
/// picks an ephemeral port; `bound_port` receives the actual one.
[[nodiscard]] Socket tcp_listen(const std::string& host, int port,
                                int* bound_port);

/// Non-blocking accept (the listener must be poll()ed readable first);
/// invalid Socket if no connection is pending.
[[nodiscard]] Socket tcp_accept(const Socket& listener);

/// poll(2) for readability over `fds`, up to `timeout_ms` (< 0 = wait
/// forever). Returns the readable fds (empty on timeout).
[[nodiscard]] std::vector<int> poll_readable(const std::vector<int>& fds,
                                             int timeout_ms);

}  // namespace bsplogp::farm

#include "src/farm/wire.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

namespace bsplogp::farm {

void put_u32(std::string* s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) s->push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string* s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) s->push_back(static_cast<char>(v >> (8 * i)));
}

void put_str(std::string* s, const std::string& v) {
  put_u32(s, static_cast<std::uint32_t>(v.size()));
  s->append(v);
}

bool WireReader::take(std::size_t n) {
  if (!ok_ || s_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint32_t WireReader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(s_[pos_ + i]))
         << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(s_[pos_ + i]))
         << (8 * i);
  pos_ += 8;
  return v;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  if (!take(n)) return {};
  std::string v = s_.substr(pos_, n);
  pos_ += n;
  return v;
}

std::string WireReader::rest() {
  if (!ok_) return {};
  std::string v = s_.substr(pos_);
  pos_ = s_.size();
  return v;
}

Frame make_hello(const std::string& build_id, const std::string& bench) {
  Frame f{Type::kHello, {}};
  put_u32(&f.payload, kProtocolVersion);
  put_str(&f.payload, build_id);
  put_str(&f.payload, bench);
  return f;
}

Frame make_welcome() { return Frame{Type::kWelcome, {}}; }

Frame make_reject(const std::string& reason) {
  Frame f{Type::kReject, {}};
  put_str(&f.payload, reason);
  return f;
}

Frame make_sweep(std::uint64_t seq, std::uint64_t n) {
  Frame f{Type::kSweep, {}};
  put_u64(&f.payload, seq);
  put_u64(&f.payload, n);
  return f;
}

Frame make_range(std::uint64_t begin, std::uint64_t end) {
  Frame f{Type::kRange, {}};
  put_u64(&f.payload, begin);
  put_u64(&f.payload, end);
  return f;
}

Frame make_result(std::uint64_t index, const std::string& payload) {
  Frame f{Type::kResult, {}};
  put_u64(&f.payload, index);
  f.payload.append(payload);
  return f;
}

Frame make_sweep_done(std::uint64_t seq) {
  Frame f{Type::kSweepDone, {}};
  put_u64(&f.payload, seq);
  return f;
}

Frame make_shutdown() { return Frame{Type::kShutdown, {}}; }

namespace {

bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, never as a
    // process-killing SIGPIPE from inside a sweep.
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::recv(fd, data, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF mid-frame (or before one): dead peer
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool write_frame(int fd, const Frame& f) {
  std::string buf;
  buf.reserve(5 + f.payload.size());
  put_u32(&buf, static_cast<std::uint32_t>(f.payload.size() + 1));
  buf.push_back(static_cast<char>(f.type));
  buf.append(f.payload);
  return write_all(fd, buf.data(), buf.size());
}

bool read_frame(int fd, Frame* out) {
  char head[4];
  if (!read_all(fd, head, 4)) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(head[i]))
           << (8 * i);
  if (len < 1 || len > kMaxFrameBytes) return false;
  std::string body(len, '\0');
  if (!read_all(fd, body.data(), len)) return false;
  const auto type = static_cast<std::uint8_t>(body[0]);
  if (type < static_cast<std::uint8_t>(Type::kHello) ||
      type > static_cast<std::uint8_t>(Type::kShutdown))
    return false;
  out->type = static_cast<Type>(type);
  out->payload = body.substr(1);
  return true;
}

}  // namespace bsplogp::farm

// The sweep-server coordinator backend (DESIGN.md §13). Owns the grid:
// replays cache hits itself, hands contiguous index ranges of the misses
// to sweep-workers over the wire protocol, merges their RESULTs strictly
// by grid index, and guarantees termination — a dead or silent worker's
// outstanding range is re-queued, spawn-mode workers are respawned with
// exponential backoff under a budget, and when no worker remains the
// coordinator computes the remainder itself. After run() returns, the
// result slots are byte-identical to a single-host run by construction:
// every slot holds either a local computation or a PointCodec round-trip
// of one (decode(encode(v)) is bit-exact).
//
// Workers execute the same bench binary and therefore the same sequence
// of map() calls. To keep a worker's own main() in lockstep, the server
// ends every sweep by broadcasting ALL n result payloads followed by
// SWEEP_DONE — so the worker returns from its map() with the same fully
// populated vector the server has. Completed sweeps are retained (frames
// only) to fast-forward respawned or late-joining workers, which always
// start at sweep 1.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/farm/dispatcher.h"
#include "src/farm/socket.h"
#include "src/farm/spec.h"
#include "src/farm/wire.h"

namespace bsplogp::farm {

struct ServerOptions {
  Spec spec;              // role kServer
  std::string build_id;   // handshake fingerprint (cache::effective_build_id)
  std::string bench;      // bench name; workers must present the same
  /// Spawn mode: the argv to exec per worker (binary + flags, already
  /// filtered of --json/--trace/--farm); the server appends --connect.
  std::vector<std::string> worker_argv;
  /// Serialized stderr diagnostics; never stdout (byte-identity).
  std::function<void(const std::string&)> diag;
};

struct ServerStats {
  std::int64_t sweeps = 0;
  std::int64_t points = 0;      // total grid points across sweeps
  std::int64_t replayed = 0;    // filled from the cache, never dispatched
  std::int64_t farmed = 0;      // filled from a worker RESULT
  std::int64_t fallback = 0;    // computed locally after workers ran out
  std::int64_t ranges = 0;      // RANGE frames sent
  std::int64_t joined = 0;      // handshakes accepted
  std::int64_t rejected = 0;    // handshakes REJECTed
  std::int64_t deaths = 0;      // worker EOF/write failure
  std::int64_t timeouts = 0;    // assignments re-queued for silence
  std::int64_t respawns = 0;    // replacement workers spawned
};

class FarmServerDispatcher : public Dispatcher {
 public:
  explicit FarmServerDispatcher(ServerOptions opt);
  /// Sends SHUTDOWN to every live worker and reaps spawned children.
  ~FarmServerDispatcher() override;

  void run(const GridView& grid) override;

  /// Binds the listener (and spawns workers in spawn mode) now instead of
  /// at the first run(). Lets a caller learn port() before handing the
  /// dispatcher to a sweep — the tests' fake workers need the ephemeral
  /// port to dial.
  void start() { ensure_listening(); }

  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  /// The port actually bound (spawn mode binds ephemeral). 0 until the
  /// first run() starts the listener.
  [[nodiscard]] int port() const { return port_; }

 private:
  struct Worker {
    Socket sock;
    pid_t pid = -1;   // spawn-mode child, else -1
    int slot = -1;    // spawn slot (worker index env), else -1
    bool handshook = false;
    bool in_sweep = false;  // received SWEEP(seq_) and owes/awaits results
    // Current assignment: indices of [begin, end) not yet RESULTed.
    std::uint64_t begin = 0, end = 0;
    std::vector<std::uint64_t> remaining;
    std::chrono::steady_clock::time_point deadline{};
    [[nodiscard]] bool idle() const { return remaining.empty(); }
  };

  struct SweepRecord {
    std::uint64_t n = 0;
    std::vector<Frame> results;  // RESULT frame per index, in grid order
  };

  using Clock = std::chrono::steady_clock;

  void ensure_listening();
  void spawn_worker(int slot);
  void drop_worker(std::size_t wi, const char* why);
  void requeue(Worker& w);
  bool handle_frame(std::size_t wi, const Frame& f, const GridView& grid);
  void sync_worker(Worker& w);      // history replay + current SWEEP
  bool assign(Worker& w);           // pop a chunk, send RANGE
  void fallback_remaining(const GridView& grid);
  void say(const std::string& line);

  ServerOptions opt_;
  Socket listener_;
  int port_ = 0;
  bool started_ = false;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<pid_t> zombies_;  // spawned children awaiting waitpid

  // Current sweep.
  std::uint64_t seq_ = 0;
  std::uint64_t remaining_ = 0;
  std::vector<char> done_;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> pending_;  // [b, e)

  std::vector<SweepRecord> history_;
  int respawn_budget_ = 0;
  int spawned_alive_ = 0;  // spawn-mode children believed running
  int next_slot_ = 0;      // fresh worker index per (re)spawn
  std::uint64_t miss_total_ = 0;  // misses at sweep start (chunk sizing)
  double backoff_s_ = 0.1;
  Clock::time_point next_spawn_{};
  Clock::time_point grace_deadline_{};
  ServerStats stats_;
};

}  // namespace bsplogp::farm

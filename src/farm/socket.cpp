#include "src/farm/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace bsplogp::farm {

namespace {

// Every farm fd is close-on-exec: spawned workers must not inherit the
// listener or a sibling worker's connection — an inherited copy would
// keep a dead worker's socket open and hide its EOF from the server.
void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool parse_host_port(const std::string& spec, std::string* host, int* port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size())
    return false;
  char* end = nullptr;
  const long p = std::strtol(spec.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || p < 1 || p > 65535) return false;
  *host = spec.substr(0, colon);
  *port = static_cast<int>(p);
  return true;
}

Socket tcp_connect(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &res) != 0)
    return Socket{};
  Socket sock;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      // Sweep frames are small and latency-bound; never Nagle-delay them.
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      set_cloexec(fd);
      sock = Socket(fd);
      break;
    }
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return sock;
}

Socket tcp_listen(const std::string& host, int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket{};
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (host.empty()) {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Socket{};
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return Socket{};
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
      *bound_port = ntohs(bound.sin_port);
  }
  // Non-blocking listener: accept() is only tried after poll() reports it
  // readable, and a connection that vanished in between must not block
  // the whole coordinator loop.
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  set_cloexec(fd);
  return Socket(fd);
}

Socket tcp_accept(const Socket& listener) {
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) return Socket{};
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  set_cloexec(fd);
  return Socket(fd);
}

std::vector<int> poll_readable(const std::vector<int>& fds, int timeout_ms) {
  std::vector<pollfd> pfds;
  pfds.reserve(fds.size());
  for (const int fd : fds) pfds.push_back(pollfd{fd, POLLIN, 0});
  const int rc =
      ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
  std::vector<int> ready;
  if (rc <= 0) return ready;
  for (const pollfd& p : pfds)
    // HUP/ERR count as readable: the next read_frame() surfaces the death
    // so the server can re-queue instead of spinning on poll().
    if ((p.revents & (POLLIN | POLLHUP | POLLERR)) != 0)
      ready.push_back(p.fd);
  return ready;
}

}  // namespace bsplogp::farm

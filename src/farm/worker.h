// The sweep-worker backend (DESIGN.md §13). The worker is the same bench
// binary running the same main(); every SweepRunner::map() call lands
// here instead of computing the whole grid. The worker serves RANGE
// assignments (computing points with the very closures a local run would
// use, split across its own --jobs), streams one RESULT per point back in
// index order, installs the server's end-of-sweep broadcast into its own
// result vector, and returns from run() on SWEEP_DONE — leaving its
// main() bit-identical in state to the server's.
//
// Protocol violations and a lost server are fatal (exit 3): a worker
// whose stream desynced can only produce wrong points, and the server
// re-queues its range either way.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/core/parallel.h"
#include "src/farm/dispatcher.h"
#include "src/farm/socket.h"
#include "src/farm/wire.h"

namespace bsplogp::farm {

struct WorkerOptions {
  std::string host;
  int port = 0;
  std::string build_id;
  std::string bench;
  int jobs = 1;                      // split each range across local jobs
  core::ThreadPool* pool = nullptr;  // optional persistent pool for that
  std::function<void(const std::string&)> diag;
};

class FarmWorkerDispatcher : public Dispatcher {
 public:
  explicit FarmWorkerDispatcher(WorkerOptions opt);
  /// Test seam: adopt an already-connected fd (e.g. one socketpair end)
  /// instead of dialing host:port. Handshake still runs on first use.
  FarmWorkerDispatcher(WorkerOptions opt, int connected_fd);

  /// Serves exactly one sweep: handshake (first call), SWEEP, RANGEs,
  /// broadcast, SWEEP_DONE.
  void run(const GridView& grid) override;

 private:
  void ensure_ready();
  void serve_range(const GridView& grid, std::uint64_t begin,
                   std::uint64_t end);
  [[noreturn]] void fatal(const std::string& why);
  void say(const std::string& line);

  WorkerOptions opt_;
  Socket sock_;
  bool ready_ = false;
  std::uint64_t seq_ = 0;
  // Crash-injection hook for the failure-mode tests: if
  // BSPLOGP_FARM_WORKER_DIE_AFTER is "K" (or "W:K" and our
  // BSPLOGP_FARM_WORKER_INDEX is W), _exit(9) right after sending the
  // K-th RESULT — mid-range, from the server's point of view.
  std::int64_t die_after_ = -1;
  std::int64_t results_sent_ = 0;
};

}  // namespace bsplogp::farm

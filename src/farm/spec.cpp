#include "src/farm/spec.h"

#include <cstdlib>

#include "src/farm/socket.h"

namespace bsplogp::farm {

namespace {

bool parse_int(const std::string& s, long lo, long hi, long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v < lo || v > hi) return false;
  *out = v;
  return true;
}

bool parse_seconds(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || !(v > 0.0) || v > 86400.0)
    return false;
  *out = v;
  return true;
}

/// Applies one "key=value" option shared by both --farm forms. Returns
/// false (with *error set) on an unknown key or a bad value; `spawn`
/// gates the spawn-only `respawns` knob.
bool apply_option(const std::string& opt, bool spawn, Spec* out,
                  std::string* error) {
  const std::size_t eq = opt.find('=');
  const std::string key = opt.substr(0, eq);
  const std::string val = eq == std::string::npos ? "" : opt.substr(eq + 1);
  if (key == "timeout") {
    if (!parse_seconds(val, &out->timeout_s)) {
      *error = "bad timeout '" + val + "' (want seconds > 0)";
      return false;
    }
    return true;
  }
  if (key == "grace") {
    if (!parse_seconds(val, &out->grace_s)) {
      *error = "bad grace '" + val + "' (want seconds > 0)";
      return false;
    }
    return true;
  }
  if (spawn && key == "respawns") {
    long v = 0;
    if (!parse_int(val, 0, 1024, &v)) {
      *error = "bad respawns '" + val + "' (want 0..1024)";
      return false;
    }
    out->respawns = static_cast<int>(v);
    return true;
  }
  if (!spawn && key == "workers") {
    long v = 0;
    if (!parse_int(val, 1, 1024, &v)) {
      *error = "bad workers '" + val + "' (want 1..1024)";
      return false;
    }
    out->expect_workers = static_cast<int>(v);
    return true;
  }
  *error = "unknown option '" + key + "'";
  return false;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    parts.push_back(s.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return parts;
}

}  // namespace

const char* farm_spec_forms() {
  return "N[,timeout=S][,respawns=R][,grace=S] or "
         "listen:PORT[,workers=N][,timeout=S][,grace=S]";
}

bool parse_farm_spec(const std::string& s, Spec* out, std::string* error) {
  Spec spec;
  spec.role = Spec::Role::kServer;
  const std::vector<std::string> parts = split(s, ',');
  const std::string& head = parts[0];
  bool spawn = false;
  if (head.rfind("listen:", 0) == 0) {
    long port = 0;
    if (!parse_int(head.substr(7), 1, 65535, &port)) {
      *error = "bad listen port in --farm '" + s + "' (want " +
               farm_spec_forms() + ")";
      return false;
    }
    spec.listen_port = static_cast<int>(port);
  } else {
    long n = 0;
    if (!parse_int(head, 1, 1024, &n)) {
      *error = "bad --farm '" + s + "' (want " + farm_spec_forms() + ")";
      return false;
    }
    spawn = true;
    spec.spawn_workers = static_cast<int>(n);
    spec.listen_host = "127.0.0.1";
  }
  for (std::size_t i = 1; i < parts.size(); ++i) {
    std::string detail;
    if (!apply_option(parts[i], spawn, &spec, &detail)) {
      *error =
          "bad --farm '" + s + "': " + detail + " (want " +
          farm_spec_forms() + ")";
      return false;
    }
  }
  *out = spec;
  return true;
}

bool parse_connect_spec(const std::string& s, Spec* out, std::string* error) {
  Spec spec;
  spec.role = Spec::Role::kWorker;
  if (!parse_host_port(s, &spec.connect_host, &spec.connect_port)) {
    *error = "bad --connect '" + s + "' (want HOST:PORT, port 1..65535)";
    return false;
  }
  *out = spec;
  return true;
}

}  // namespace bsplogp::farm

// The unified sweep-dispatch interface (DESIGN.md §13). PR 8 collapsed
// bench::SweepRunner's map/map_cached split into one map() that compiles
// its grid down to this type-erased GridView; every backend — the local
// thread pool, the farm coordinator, the farm worker — consumes the same
// view, which is how all 11 harness benches gained `--farm` without a
// line of per-bench code.
//
// The contract every backend must honour (and the byte-identity ctests
// enforce): after run(grid) returns, every result slot i in [0, n) holds
// the value fn(i) would have produced locally, bit for bit. Backends may
// compute slots in any order, on any thread or host, or replay them from
// the cache or the wire — emission order is the caller's, so bench
// stdout/JSON is byte-identical across every backend.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "src/core/parallel.h"

namespace bsplogp::farm {

/// Type-erased view of one sweep grid, built by SweepRunner::map over its
/// typed result vector. All callbacks write result slots owned by the
/// caller and are only valid during run().
struct GridView {
  std::size_t n = 0;

  /// Computes every point in [begin, end) directly into its slot,
  /// consulting the point cache per point when enabled. The fast path:
  /// no per-point type erasure, so the local backend adds zero overhead
  /// over the pre-farm SweepRunner.
  std::function<void(std::size_t, std::size_t)> compute_range;

  /// Attempts a cache replay of point i into its slot; false on a miss
  /// (or when no cache is enabled). The coordinator replays hits itself
  /// and dispatches only misses to workers.
  std::function<bool(std::size_t)> replay;

  /// Encodes slot i's current value as a cache::PointCodec payload (the
  /// wire format). Only meaningful after the slot was filled.
  std::function<std::string(std::size_t)> reencode;

  /// Decodes a codec payload into slot i; false if malformed. Never
  /// touches the cache — the worker-side fill from the end-of-sweep
  /// broadcast.
  std::function<bool(std::size_t, const std::string&)> install;

  /// install() plus a cache publish when the cache is writable — the
  /// coordinator-side merge of a worker's RESULT.
  std::function<bool(std::size_t, const std::string&)> accept;
};

class Dispatcher {
 public:
  virtual ~Dispatcher() = default;
  /// Fills every result slot of `grid` (see the contract above).
  virtual void run(const GridView& grid) = 0;
};

/// Single-host backend: the pre-farm SweepRunner dispatch, verbatim —
/// chunked ranges on a persistent pool when one is supplied, a transient
/// pool (or the calling thread, jobs <= 1) otherwise.
class LocalDispatcher : public Dispatcher {
 public:
  explicit LocalDispatcher(int jobs, core::ThreadPool* pool = nullptr)
      : jobs_(jobs), pool_(pool) {}

  void run(const GridView& grid) override {
    if (pool_ != nullptr && jobs_ > 1) {
      pool_->for_ranges(grid.n, grid.compute_range);
    } else {
      core::parallel_for_ranges(grid.n, jobs_, grid.compute_range);
    }
  }

 private:
  int jobs_;
  core::ThreadPool* pool_;
};

}  // namespace bsplogp::farm

// Length-prefixed wire protocol of the distributed sweep farm
// (DESIGN.md §13). Every message on the socket is one frame:
//
//   u32  payload length (little-endian, includes the type byte)
//   u8   message type (Type below)
//   ...  payload (fixed-width u32/u64 little-endian scalars,
//        length-prefixed strings, or raw trailing bytes)
//
// The conversation:
//
//   worker -> server   HELLO    proto version, build id, bench name
//   server -> worker   WELCOME  (accepted) | REJECT reason (then close)
//   server -> worker   SWEEP    sweep seq, grid size n
//   server -> worker   RANGE    [begin, end) of the current sweep
//   worker -> server   RESULT   grid index + codec payload bytes
//   server -> worker   RESULT   grid index + codec payload bytes
//                               (the end-of-sweep broadcast: every point,
//                               so worker processes hold the full result
//                               vector and stay in lockstep with the
//                               server through multi-sweep benches)
//   server -> worker   SWEEP_DONE  sweep seq — worker returns from map()
//   server -> worker   SHUTDOWN    bench over, exit 0
//
// The payload bytes inside RESULT are exactly cache::PointCodec's
// encoding — the same bytes the sweep cache stores on disk — so the
// byte-identity contract (farm output == --jobs 1 output) rests on one
// codec, proven once.
//
// Framing is strict: an oversized length prefix, a truncated frame, or
// an unknown type poisons the connection (read_frame returns false) and
// the peer is treated as dead. Nothing here retries; recovery policy
// (re-queue, respawn, backoff) lives in server.cpp.
#pragma once

#include <cstdint>
#include <string>

namespace bsplogp::farm {

inline constexpr std::uint32_t kProtocolVersion = 1;

/// Frames larger than this are a malformed/hostile peer, not a sweep.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class Type : std::uint8_t {
  kHello = 1,
  kWelcome = 2,
  kReject = 3,
  kSweep = 4,
  kRange = 5,
  kResult = 6,
  kSweepDone = 7,
  kShutdown = 8,
};

struct Frame {
  Type type = Type::kHello;
  std::string payload;
};

// ---- Payload packing --------------------------------------------------------

void put_u32(std::string* s, std::uint32_t v);
void put_u64(std::string* s, std::uint64_t v);
/// Length-prefixed (u32) string.
void put_str(std::string* s, const std::string& v);

/// Sequential payload reader; any overrun latches ok() to false and
/// subsequent reads return zero values.
class WireReader {
 public:
  explicit WireReader(const std::string& payload) : s_(payload) {}
  // The reader references, not copies, its payload — a temporary would
  // dangle before the first read.
  explicit WireReader(std::string&&) = delete;

  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::string str();
  /// Everything not yet consumed (RESULT's trailing codec bytes).
  [[nodiscard]] std::string rest();

  /// True iff every read so far stayed in bounds.
  [[nodiscard]] bool ok() const { return ok_; }
  /// True iff ok() and the payload was fully consumed.
  [[nodiscard]] bool done() const { return ok_ && pos_ == s_.size(); }

 private:
  [[nodiscard]] bool take(std::size_t n);
  const std::string& s_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- Message builders -------------------------------------------------------

[[nodiscard]] Frame make_hello(const std::string& build_id,
                               const std::string& bench);
[[nodiscard]] Frame make_welcome();
[[nodiscard]] Frame make_reject(const std::string& reason);
[[nodiscard]] Frame make_sweep(std::uint64_t seq, std::uint64_t n);
[[nodiscard]] Frame make_range(std::uint64_t begin, std::uint64_t end);
[[nodiscard]] Frame make_result(std::uint64_t index,
                                const std::string& payload);
[[nodiscard]] Frame make_sweep_done(std::uint64_t seq);
[[nodiscard]] Frame make_shutdown();

// ---- Socket framing ---------------------------------------------------------

/// Blocking full-frame write; false on a dead/poisoned peer (EPIPE,
/// reset). Never raises SIGPIPE.
[[nodiscard]] bool write_frame(int fd, const Frame& f);

/// Blocking full-frame read; false on EOF, error, or a malformed frame
/// (oversized length, truncation, unknown type).
[[nodiscard]] bool read_frame(int fd, Frame* out);

}  // namespace bsplogp::farm

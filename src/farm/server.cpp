#include "src/farm/server.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/core/parallel.h"

namespace bsplogp::farm {

namespace {

int to_ms(std::chrono::steady_clock::duration d) {
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(d).count();
  return ms < 0 ? 0 : static_cast<int>(std::min<long long>(ms, 60'000));
}

}  // namespace

FarmServerDispatcher::FarmServerDispatcher(ServerOptions opt)
    : opt_(std::move(opt)), respawn_budget_(opt_.spec.respawns) {}

FarmServerDispatcher::~FarmServerDispatcher() {
  for (auto& w : workers_) {
    if (w->sock.valid()) {
      (void)write_frame(w->sock.fd(), make_shutdown());
      w->sock.close();
    }
  }
  listener_.close();
  // Spawned children normally exit on their own (their main() finishes in
  // lockstep with ours); SHUTDOWN/EOF covers early-exit paths. Reap with
  // a bounded wait, then escalate.
  for (const pid_t pid : zombies_) {
    bool reaped = false;
    for (int i = 0; i < 200 && !reaped; ++i) {
      if (::waitpid(pid, nullptr, WNOHANG) != 0)
        reaped = true;  // exited, or already gone (ECHILD)
      else
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!reaped) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }
}

void FarmServerDispatcher::say(const std::string& line) {
  if (opt_.diag) opt_.diag(line);
}

void FarmServerDispatcher::ensure_listening() {
  if (started_) return;
  started_ = true;
  listener_ =
      tcp_listen(opt_.spec.listen_host, opt_.spec.listen_port, &port_);
  if (!listener_.valid())
    throw std::runtime_error("farm: cannot listen on " +
                             (opt_.spec.listen_host.empty()
                                  ? std::string("*")
                                  : opt_.spec.listen_host) +
                             ":" + std::to_string(opt_.spec.listen_port));
  say("farm: serving on port " + std::to_string(port_));
  for (int i = 0; i < opt_.spec.spawn_workers; ++i) spawn_worker(next_slot_++);
}

void FarmServerDispatcher::spawn_worker(int slot) {
  // argv = worker template + our --connect endpoint. Built before fork so
  // the child only execs.
  std::vector<std::string> argv = opt_.worker_argv;
  argv.push_back("--connect");
  argv.push_back("127.0.0.1:" + std::to_string(port_));
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (std::string& a : argv) cargv.push_back(a.data());
  cargv.push_back(nullptr);
  const std::string slot_str = std::to_string(slot);

  const pid_t pid = ::fork();
  if (pid < 0) {
    say("farm: fork failed");
    return;
  }
  if (pid == 0) {
    // Child: its stdout would duplicate ours byte for byte — silence it.
    // stderr stays shared so worker diagnostics remain visible.
    const int null_fd = ::open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      ::dup2(null_fd, STDOUT_FILENO);
      ::close(null_fd);
    }
    ::setenv("BSPLOGP_FARM_WORKER_INDEX", slot_str.c_str(), 1);
    ::execv("/proc/self/exe", cargv.data());
    ::execvp(cargv[0], cargv.data());
    ::_exit(127);
  }
  zombies_.push_back(pid);
  ++spawned_alive_;
  grace_deadline_ = std::max(grace_deadline_,
                             Clock::now() + std::chrono::duration_cast<
                                                Clock::duration>(
                                                std::chrono::duration<double>(
                                                    opt_.spec.grace_s)));
}

void FarmServerDispatcher::requeue(Worker& w) {
  // Push the not-yet-RESULTed indices back as contiguous runs, at the
  // front so a healthy worker picks them up next.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> runs;
  for (const std::uint64_t i : w.remaining) {
    if (!runs.empty() && runs.back().second == i)
      ++runs.back().second;
    else
      runs.emplace_back(i, i + 1);
  }
  for (auto it = runs.rbegin(); it != runs.rend(); ++it)
    pending_.push_front(*it);
  w.remaining.clear();
}

void FarmServerDispatcher::drop_worker(std::size_t wi, const char* why) {
  Worker& w = *workers_[wi];
  say(std::string("farm: worker dropped (") + why + "), " +
      std::to_string(w.remaining.size()) + " points re-queued");
  requeue(w);
  w.sock.close();
  if (opt_.spec.spawn_workers > 0 && spawned_alive_ > 0) --spawned_alive_;
  ++stats_.deaths;
  workers_.erase(workers_.begin() + static_cast<std::ptrdiff_t>(wi));
}

bool FarmServerDispatcher::assign(Worker& w) {
  if (pending_.empty()) return false;
  int live = 0;
  for (const auto& o : workers_)
    if (o->handshook) ++live;
  const std::size_t chunk = core::sweep_chunk(
      static_cast<std::size_t>(miss_total_), std::max(1, live), 0);
  auto& run = pending_.front();
  const std::uint64_t take =
      std::min<std::uint64_t>(run.second - run.first, chunk);
  const std::uint64_t b = run.first;
  const std::uint64_t e = b + take;
  if (!write_frame(w.sock.fd(), make_range(b, e))) return false;
  run.first = e;
  if (run.first == run.second) pending_.pop_front();
  w.begin = b;
  w.end = e;
  w.remaining.clear();
  for (std::uint64_t i = b; i < e; ++i) w.remaining.push_back(i);
  w.deadline = Clock::now() +
               std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(opt_.spec.timeout_s));
  ++stats_.ranges;
  return true;
}

void FarmServerDispatcher::sync_worker(Worker& w) {
  // A joining worker's main() is at its first map(): fast-forward it
  // through every completed sweep, then open the current one.
  for (std::size_t k = 0; k < history_.size(); ++k) {
    const SweepRecord& rec = history_[k];
    if (!write_frame(w.sock.fd(), make_sweep(k + 1, rec.n))) return;
    for (const Frame& f : rec.results)
      if (!write_frame(w.sock.fd(), f)) return;
    if (!write_frame(w.sock.fd(), make_sweep_done(k + 1))) return;
  }
  if (seq_ > history_.size() && remaining_ > 0) {
    if (!write_frame(w.sock.fd(), make_sweep(seq_, done_.size()))) return;
    w.in_sweep = true;
  }
}

bool FarmServerDispatcher::handle_frame(std::size_t wi, const Frame& f,
                                        const GridView& grid) {
  Worker& w = *workers_[wi];
  if (!w.handshook) {
    if (f.type != Type::kHello) return false;
    WireReader r(f.payload);
    const std::uint32_t proto = r.u32();
    const std::string build = r.str();
    const std::string bench = r.str();
    std::string why;
    if (!r.ok() || !r.done())
      why = "malformed hello";
    else if (proto != kProtocolVersion)
      why = "protocol " + std::to_string(proto) + " != " +
            std::to_string(kProtocolVersion);
    else if (build != opt_.build_id)
      why = "build id mismatch";
    else if (bench != opt_.bench)
      why = "bench '" + bench + "' != '" + opt_.bench + "'";
    if (!why.empty()) {
      (void)write_frame(w.sock.fd(), make_reject(why));
      ++stats_.rejected;
      say("farm: worker rejected: " + why);
      return false;
    }
    if (!write_frame(w.sock.fd(), make_welcome())) return false;
    w.handshook = true;
    ++stats_.joined;
    sync_worker(w);
    grace_deadline_ =
        std::max(grace_deadline_,
                 Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(
                                        opt_.spec.grace_s)));
    return w.sock.valid();
  }
  if (f.type != Type::kResult) return false;
  WireReader r(f.payload);
  const std::uint64_t index = r.u64();
  const std::string payload = r.rest();
  if (!r.ok() || index >= done_.size()) return false;
  if (done_[index] != 0) return true;  // stale duplicate; already merged
  if (!grid.accept(static_cast<std::size_t>(index), payload)) {
    say("farm: undecodable result for point " + std::to_string(index));
    return false;
  }
  done_[index] = 1;
  --remaining_;
  ++stats_.farmed;
  const auto it = std::find(w.remaining.begin(), w.remaining.end(), index);
  if (it != w.remaining.end()) w.remaining.erase(it);
  // Progress-based deadline: a slow-but-alive worker is never re-queued.
  w.deadline = Clock::now() +
               std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(opt_.spec.timeout_s));
  grace_deadline_ =
      std::max(grace_deadline_,
               Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(
                                      opt_.spec.grace_s)));
  return true;
}

void FarmServerDispatcher::fallback_remaining(const GridView& grid) {
  for (const auto& [b, e] : pending_) {
    grid.compute_range(static_cast<std::size_t>(b),
                       static_cast<std::size_t>(e));
    for (std::uint64_t i = b; i < e; ++i) done_[i] = 1;
    remaining_ -= e - b;
    stats_.fallback += static_cast<std::int64_t>(e - b);
  }
  pending_.clear();
  // Paranoia: anything still outstanding (a bookkeeping hole) is computed
  // point by point so run() terminates no matter what.
  for (std::size_t i = 0; i < done_.size() && remaining_ > 0; ++i) {
    if (done_[i] != 0) continue;
    grid.compute_range(i, i + 1);
    done_[i] = 1;
    --remaining_;
    ++stats_.fallback;
  }
}

void FarmServerDispatcher::run(const GridView& grid) {
  ensure_listening();
  ++seq_;
  ++stats_.sweeps;
  stats_.points += static_cast<std::int64_t>(grid.n);
  done_.assign(grid.n, 0);
  pending_.clear();
  remaining_ = grid.n;

  // Replay cache hits locally; only the misses ever touch the wire.
  for (std::size_t i = 0; i < grid.n; ++i) {
    if (grid.replay && grid.replay(i)) {
      done_[i] = 1;
      --remaining_;
      ++stats_.replayed;
    } else if (!pending_.empty() && pending_.back().second == i) {
      ++pending_.back().second;
    } else {
      pending_.emplace_back(i, i + 1);
    }
  }
  miss_total_ = remaining_;

  // Open the sweep on every synced worker (joiners are synced on accept).
  for (std::size_t wi = 0; wi < workers_.size();) {
    Worker& w = *workers_[wi];
    if (w.handshook && remaining_ > 0) {
      if (!write_frame(w.sock.fd(), make_sweep(seq_, grid.n))) {
        drop_worker(wi, "write failed");
        continue;
      }
      w.in_sweep = true;
    }
    ++wi;
  }

  grace_deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(
                                           opt_.spec.grace_s));

  while (remaining_ > 0) {
    // Reap exited children opportunistically (their EOF is what actually
    // drives recovery; this just keeps the zombie list short).
    for (std::size_t i = 0; i < zombies_.size();) {
      if (::waitpid(zombies_[i], nullptr, WNOHANG) != 0)
        zombies_.erase(zombies_.begin() + static_cast<std::ptrdiff_t>(i));
      else
        ++i;
    }

    // Replace dead spawn-mode workers, with exponential backoff under the
    // respawn budget.
    if (opt_.spec.spawn_workers > 0 && spawned_alive_ < opt_.spec.spawn_workers &&
        respawn_budget_ > 0 && Clock::now() >= next_spawn_) {
      --respawn_budget_;
      ++stats_.respawns;
      say("farm: respawning worker (budget " +
          std::to_string(respawn_budget_) + " left)");
      spawn_worker(next_slot_++);
      next_spawn_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(
                                           backoff_s_));
      backoff_s_ *= 2.0;
    }

    // Hand ranges to idle in-sweep workers.
    for (std::size_t wi = 0; wi < workers_.size();) {
      Worker& w = *workers_[wi];
      if (w.handshook && w.in_sweep && w.idle() && !pending_.empty()) {
        if (!assign(w)) {
          drop_worker(wi, "write failed");
          continue;
        }
      }
      ++wi;
    }

    // Out of workers and out of patience: compute the remainder here so
    // the sweep always completes.
    bool have_worker = false;
    for (const auto& w : workers_)
      if (w->handshook) have_worker = true;
    if (!have_worker && Clock::now() >= grace_deadline_) {
      say("farm: no workers; computing " + std::to_string(remaining_) +
          " remaining points locally");
      fallback_remaining(grid);
      break;
    }

    std::vector<int> fds;
    fds.push_back(listener_.fd());
    for (const auto& w : workers_) fds.push_back(w->sock.fd());
    const std::vector<int> ready = poll_readable(fds, 100);

    for (const int fd : ready) {
      if (fd == listener_.fd()) {
        for (;;) {
          Socket s = tcp_accept(listener_);
          if (!s.valid()) break;
          auto w = std::make_unique<Worker>();
          w->sock = std::move(s);
          workers_.push_back(std::move(w));
        }
        continue;
      }
      std::size_t wi = workers_.size();
      for (std::size_t i = 0; i < workers_.size(); ++i)
        if (workers_[i]->sock.fd() == fd) wi = i;
      if (wi == workers_.size()) continue;  // dropped earlier this round
      Frame f;
      if (!read_frame(fd, &f) || !handle_frame(wi, f, grid))
        drop_worker(wi, "connection lost");
    }

    // Silent workers: re-queue their range and cut them loose. Their
    // socket closes, so a wedged spawn-mode child exits on its next send.
    const auto now = Clock::now();
    for (std::size_t wi = 0; wi < workers_.size();) {
      Worker& w = *workers_[wi];
      if (!w.idle() && now >= w.deadline) {
        ++stats_.timeouts;
        drop_worker(wi, "timeout");
        continue;
      }
      ++wi;
    }
  }

  // Sweep complete. Record it for future joiners, then broadcast every
  // result so each worker's own main() returns from map() with a vector
  // bit-identical to ours — that is what keeps workers in lockstep
  // through multi-sweep benches.
  SweepRecord rec;
  rec.n = grid.n;
  rec.results.reserve(grid.n);
  for (std::size_t i = 0; i < grid.n; ++i)
    rec.results.push_back(make_result(i, grid.reencode(i)));
  for (std::size_t wi = 0; wi < workers_.size();) {
    Worker& w = *workers_[wi];
    if (!w.in_sweep) {
      ++wi;
      continue;
    }
    bool ok = true;
    for (const Frame& f : rec.results)
      if (!(ok = write_frame(w.sock.fd(), f))) break;
    if (ok) ok = write_frame(w.sock.fd(), make_sweep_done(seq_));
    if (!ok) {
      drop_worker(wi, "broadcast failed");
      continue;
    }
    w.in_sweep = false;
    ++wi;
  }
  history_.push_back(std::move(rec));
}

}  // namespace bsplogp::farm

// BSP cost-model parameters and per-run cost records (paper, Section 2.1).
//
// A superstep with at most w local operations per processor and an
// h-relation costs  T_superstep = w + g*h + l  (Relation (1) in the paper);
// the cost of a computation is the sum over its supersteps. 1/g is the
// per-processor bandwidth of the communication medium and l upper-bounds the
// barrier-synchronization time. The same BSP program runs, and gives the
// same results, for any (g, l): the parameters price a run, they never steer
// it — the Machine enforces that separation by keeping them out of the
// execution path entirely.
#pragma once

#include <vector>

#include "src/core/contracts.h"
#include "src/core/run_stats.h"
#include "src/core/types.h"

namespace bsplogp::bsp {

/// Machine parameters: bandwidth gap g and barrier latency l, both in
/// unit-operation steps.
struct Params {
  Time g = 1;
  Time l = 1;

  void validate() const {
    BSPLOGP_EXPECTS(g >= 1);
    BSPLOGP_EXPECTS(l >= 1);
  }
};

/// Exact cost breakdown of one superstep.
struct SuperstepCost {
  /// max over processors of local operations performed.
  Time w = 0;
  /// max over processors of max(messages sent, messages received): the
  /// degree of the routed h-relation.
  Time h = 0;

  [[nodiscard]] Time total(const Params& p) const { return w + p.g * h + p.l; }
};

/// Aggregate result of running a BSP program.
struct RunStats : core::RunStatsBase {
  // Inherited: finish_time (total model time, the sum of superstep costs),
  // proc_finish (cumulative cost at the end of the superstep in which each
  // processor halted), blocked_procs (processors still running when the
  // superstep limit cut the run off), messages (pool-to-pool transfers
  // across all supersteps).

  /// Number of supersteps executed (>= 1 for any program that ran).
  std::int64_t supersteps = 0;
  /// Per-superstep cost breakdown, in execution order.
  std::vector<SuperstepCost> trace;
  /// True if the run stopped because it hit the superstep limit rather than
  /// because every processor halted.
  bool hit_superstep_limit = false;
};

}  // namespace bsplogp::bsp

// The BSP programming interface.
//
// A BSP computation (paper, Section 2.1) is a sequence of supersteps; in
// each superstep every processor (i) extracts messages from its input pool,
// (ii) computes on local data, and (iii) inserts messages into its output
// pool, after which a global barrier transfers all output pools to the
// destinations' input pools. Programs here are written per-processor: the
// Machine instantiates one ProcProgram per processor and calls step() once
// per superstep, handing it a Ctx that exposes the input pool and accepts
// sends and work charges.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/core/types.h"

namespace bsplogp::bsp {

class Machine;

/// Per-superstep view a processor gets of the machine. Valid only for the
/// duration of the step() call it is passed to.
class Ctx {
 public:
  [[nodiscard]] ProcId pid() const { return pid_; }
  [[nodiscard]] ProcId nprocs() const { return nprocs_; }
  /// Index of the current superstep, 0-based.
  [[nodiscard]] std::int64_t superstep() const { return superstep_; }

  /// The input pool: messages routed to this processor during the previous
  /// superstep's communication phase. Order within the pool is controlled by
  /// the Machine's InboxOrder option; correct programs must not rely on it.
  /// Reading the pool is free; extracting is charged one operation per
  /// message automatically (extraction is a local operation in the model),
  /// whether or not the program looks at every message.
  [[nodiscard]] std::span<const Message> inbox() const { return inbox_; }

  /// Inserts a message into the output pool; it arrives in dst's input pool
  /// at the start of the next superstep. Charged one local operation.
  void send(ProcId dst, Word payload, std::int32_t tag = 0);
  /// send() for a pre-built message (src is overwritten with this
  /// processor's id; dst taken from the message). Used by executors that
  /// forward messages carrying full protocol headers.
  void send_msg(Message m);

  /// Records `ops` local operations of computation for the cost model.
  void charge(Time ops);

  /// Constructed by executors (the BSP Machine, and xsim's Theorem-2
  /// superstep simulation): binds one processor's view for one superstep.
  Ctx(ProcId pid, ProcId nprocs, std::int64_t superstep,
      std::span<const Message> inbox, std::vector<Message>& outbox,
      Time& work)
      : pid_(pid),
        nprocs_(nprocs),
        superstep_(superstep),
        inbox_(inbox),
        outbox_(outbox),
        work_(work) {}

 private:
  ProcId pid_;
  ProcId nprocs_;
  std::int64_t superstep_;
  std::span<const Message> inbox_;
  std::vector<Message>& outbox_;
  Time& work_;
};

/// A processor's program: step() is invoked once per superstep and returns
/// true while the processor wants the computation to continue. Returning
/// false halts the processor permanently — it is never stepped again — and
/// the machine stops once every processor has halted. Per-processor state
/// lives in the derived class.
class ProcProgram {
 public:
  virtual ~ProcProgram() = default;
  virtual bool step(Ctx& ctx) = 0;
};

/// Convenience adaptor for writing programs as lambdas:
///   auto progs = make_programs(p, [&](Ctx& c) { ...; return c.superstep()<3; });
class FnProgram final : public ProcProgram {
 public:
  explicit FnProgram(std::function<bool(Ctx&)> fn) : fn_(std::move(fn)) {}
  bool step(Ctx& ctx) override { return fn_(ctx); }

 private:
  std::function<bool(Ctx&)> fn_;
};

/// Builds p copies of a stateless (or externally-stateful) step function.
[[nodiscard]] inline std::vector<std::unique_ptr<ProcProgram>> make_programs(
    ProcId nprocs, const std::function<bool(Ctx&)>& fn) {
  std::vector<std::unique_ptr<ProcProgram>> progs;
  progs.reserve(static_cast<std::size_t>(nprocs));
  for (ProcId i = 0; i < nprocs; ++i)
    progs.push_back(std::make_unique<FnProgram>(fn));
  return progs;
}

}  // namespace bsplogp::bsp

#include "src/bsp/machine.h"

#include <algorithm>
#include <utility>

#include "src/core/contracts.h"

namespace bsplogp::bsp {

void Ctx::send(ProcId dst, Word payload, std::int32_t tag) {
  send_msg(Message{pid_, dst, payload, tag});
}

void Ctx::send_msg(Message m) {
  BSPLOGP_EXPECTS(m.dst >= 0 && m.dst < nprocs_);
  m.src = pid_;
  outbox_.push_back(m);
  work_ += 1;  // inserting into the output pool is a local operation
}

void Ctx::charge(Time ops) {
  BSPLOGP_EXPECTS(ops >= 0);
  work_ += ops;
}

Machine::Machine(ProcId nprocs, Params params, Options options)
    : nprocs_(nprocs), params_(params), options_(options) {
  BSPLOGP_EXPECTS(nprocs >= 1);
  params_.validate();
  BSPLOGP_EXPECTS(options_.max_supersteps >= 1);
}

RunStats Machine::run(const std::function<bool(Ctx&)>& step_fn) {
  const auto programs = make_programs(nprocs_, step_fn);
  return run(programs);
}

RunStats Machine::run(std::span<const std::unique_ptr<ProcProgram>> programs) {
  BSPLOGP_EXPECTS(std::cmp_equal(programs.size(), nprocs_));
  for (const auto& prog : programs) BSPLOGP_EXPECTS(prog != nullptr);

  if (options_.sink != nullptr)
    options_.sink->run_begin(trace::RunInfo{"bsp", nprocs_, 0, 0, 0, 0,
                                            params_.g, params_.l});

  const auto np = static_cast<std::size_t>(nprocs_);
  // inboxes[i]: messages delivered to processor i at the start of the
  // current superstep; refilled (and the old contents discarded, as the
  // model prescribes) by each communication phase.
  std::vector<std::vector<Message>> inboxes(np);
  std::vector<std::vector<Message>> outboxes(np);
  // A program that returned false has halted for good: it is never stepped
  // again (its inbox is still refilled each superstep, as the model
  // delivers regardless), so it cannot "resurrect" by returning true later.
  std::vector<bool> halted(np, false);
  core::Rng shuffle_rng(options_.shuffle_seed);

  RunStats stats;
  stats.proc_finish.assign(np, 0);
  for (std::int64_t step = 0;; ++step) {
    if (step >= options_.max_supersteps) {
      stats.hit_superstep_limit = true;
      break;
    }
    if (options_.sink != nullptr)
      options_.sink->emit(
          trace::Event::superstep_begin(stats.finish_time, step));

    // --- Local computation phase (all processors, any order: they cannot
    // observe each other within a superstep).
    SuperstepCost cost;
    bool any_continue = false;
    std::vector<ProcId> halted_now;
    for (ProcId i = 0; i < nprocs_; ++i) {
      if (halted[static_cast<std::size_t>(i)]) continue;
      auto& inbox = inboxes[static_cast<std::size_t>(i)];
      auto& outbox = outboxes[static_cast<std::size_t>(i)];
      Time work = static_cast<Time>(inbox.size());  // pool extraction cost
      Ctx ctx(i, nprocs_, step, inbox, outbox, work);
      const bool wants_more = programs[static_cast<std::size_t>(i)]->step(ctx);
      if (!wants_more) {
        halted[static_cast<std::size_t>(i)] = true;
        halted_now.push_back(i);
      }
      any_continue = any_continue || wants_more;
      cost.w = std::max(cost.w, work);
    }

    // --- Communication phase: route the h-relation formed by the output
    // pools. h is the max over processors of messages sent or received.
    std::vector<Time> received(np, 0);
    Time sent_max = 0;
    for (ProcId i = 0; i < nprocs_; ++i) {
      auto& outbox = outboxes[static_cast<std::size_t>(i)];
      sent_max = std::max(sent_max, static_cast<Time>(outbox.size()));
      for (const Message& m : outbox)
        received[static_cast<std::size_t>(m.dst)] += 1;
    }
    Time recv_max = 0;
    for (Time r : received) recv_max = std::max(recv_max, r);
    cost.h = std::max(sent_max, recv_max);

    // Deliver: new input pools replace the old ones.
    for (auto& inbox : inboxes) inbox.clear();
    for (ProcId i = 0; i < nprocs_; ++i) {
      auto& outbox = outboxes[static_cast<std::size_t>(i)];
      for (Message& m : outbox) {
        stats.messages += 1;
        inboxes[static_cast<std::size_t>(m.dst)].push_back(m);
      }
      outbox.clear();
    }
    // Iterating senders in id order already yields SourceOrder pools.
    if (options_.inbox_order == InboxOrder::Shuffled) {
      for (auto& inbox : inboxes)
        std::shuffle(inbox.begin(), inbox.end(), shuffle_rng);
    }

    const Time before = stats.finish_time;
    stats.finish_time += cost.total(params_);
    stats.supersteps += 1;
    stats.trace.push_back(cost);
    // A processor that halted this superstep finished at its closing
    // barrier: the cumulative cost including this superstep.
    for (const ProcId i : halted_now)
      stats.proc_finish[static_cast<std::size_t>(i)] = stats.finish_time;
    if (options_.sink != nullptr)
      options_.sink->emit(trace::Event::superstep_end(
          stats.finish_time, before, cost.w, cost.h, step));

    if (!any_continue) {
      // The model delivers the final pools, but no processor will look at
      // them: every program has halted.
      break;
    }
  }
  for (ProcId i = 0; i < nprocs_; ++i)
    if (!halted[static_cast<std::size_t>(i)])
      stats.blocked_procs.push_back(i);
  if (options_.sink != nullptr) options_.sink->run_end(stats.finish_time);
  stats_ = stats;
  return stats;
}

}  // namespace bsplogp::bsp

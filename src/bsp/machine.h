// The BSP abstract machine: executes per-processor programs superstep by
// superstep and accounts the exact model cost  sum_s (w_s + g*h_s + l).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/bsp/params.h"
#include "src/bsp/program.h"
#include "src/core/rng.h"
#include "src/core/types.h"
#include "src/trace/sink.h"

namespace bsplogp::bsp {

/// Order in which a processor's input pool presents its messages. The model
/// leaves it unspecified; SourceOrder is deterministic (sorted by sender,
/// then by insertion order at the sender), Shuffled exercises
/// order-independence in tests.
enum class InboxOrder { SourceOrder, Shuffled };

class Machine {
 public:
  struct Options {
    std::int64_t max_supersteps = 1'000'000;
    InboxOrder inbox_order = InboxOrder::SourceOrder;
    /// Seed for InboxOrder::Shuffled.
    std::uint64_t shuffle_seed = 0;
    /// Observer for the run's event stream (src/trace): superstep begin/
    /// end records carrying (w_s, h_s). Not owned; must outlive run().
    /// Leave null for production runs — emission is a single pointer test
    /// per site, and tracing never alters the execution.
    trace::TraceSink* sink = nullptr;
  };

  Machine(ProcId nprocs, Params params) : Machine(nprocs, params, Options{}) {}
  Machine(ProcId nprocs, Params params, Options options);

  /// Runs one program per processor to completion (all programs return
  /// false in the same superstep) or to the superstep limit. The caller
  /// retains ownership of the programs and can read results out of them
  /// afterwards.
  RunStats run(std::span<const std::unique_ptr<ProcProgram>> programs);

  /// Runs `step_fn` on every processor (SPMD), mirroring
  /// logp::Machine::run(const ProgramFn&). State shared between supersteps
  /// lives in the function's captures.
  RunStats run(const std::function<bool(Ctx&)>& step_fn);

  [[nodiscard]] ProcId nprocs() const { return nprocs_; }
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Statistics of the most recent run(), mirroring
  /// logp::Machine::last_run_stats().
  [[nodiscard]] const RunStats& last_run_stats() const { return stats_; }

 private:
  ProcId nprocs_;
  Params params_;
  Options options_;
  RunStats stats_;
};

}  // namespace bsplogp::bsp

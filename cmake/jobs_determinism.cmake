# Asserts the SweepRunner determinism contract (DESIGN.md §9) end to end
# for one bench binary: `--jobs 1` and `--jobs 4` must produce
#   * byte-identical stdout (tables),
#   * byte-identical Chrome traces (traced runs stay on the main thread),
#   * identical JSON documents modulo the self-describing "jobs" field.
# On top of the jobs sweep, `--jobs 4` is re-run with BSPLOGP_SWEEP_CHUNK
# forcing pathological range-claim sizes (1 = maximal claim traffic, 7 =
# misaligned with every grid, 10^9 = one thread takes everything): chunked
# dispatch must never change a byte either.
#
# Run as a ctest script:
#   cmake -DBENCH=<path-to-binary> -DWORKDIR=<scratch-dir> \
#         -P cmake/jobs_determinism.cmake
#
# Only pure model-time benches qualify (wall-clock metrics can never be
# byte-stable); bench/CMakeLists.txt registers the eligible binaries.

if(NOT DEFINED BENCH OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DBENCH=<bin> -DWORKDIR=<dir> -P jobs_determinism.cmake")
endif()

file(MAKE_DIRECTORY "${WORKDIR}")

foreach(jobs 1 4)
  execute_process(
    COMMAND "${BENCH}" --smoke --jobs ${jobs}
      --json "${WORKDIR}/doc_jobs${jobs}.json"
      --trace "${WORKDIR}/trace_jobs${jobs}.json"
    OUTPUT_VARIABLE stdout_${jobs}
    ERROR_VARIABLE stderr_${jobs}
    RESULT_VARIABLE status_${jobs})
  if(NOT status_${jobs} EQUAL 0)
    message(FATAL_ERROR "${BENCH} --jobs ${jobs} exited ${status_${jobs}}:\n${stderr_${jobs}}")
  endif()
endforeach()

if(NOT stdout_1 STREQUAL stdout_4)
  message(FATAL_ERROR "stdout differs between --jobs 1 and --jobs 4 for ${BENCH}")
endif()

file(READ "${WORKDIR}/trace_jobs1.json" trace_1)
file(READ "${WORKDIR}/trace_jobs4.json" trace_4)
if(NOT trace_1 STREQUAL trace_4)
  message(FATAL_ERROR "Chrome trace differs between --jobs 1 and --jobs 4 for ${BENCH}")
endif()

# The JSON document records the job count it ran with; neutralize that one
# self-describing field, then demand byte equality of everything else.
file(READ "${WORKDIR}/doc_jobs1.json" doc_1)
file(READ "${WORKDIR}/doc_jobs4.json" doc_4)
string(REGEX REPLACE "\"jobs\": [0-9]+" "\"jobs\": N" doc_1 "${doc_1}")
string(REGEX REPLACE "\"jobs\": [0-9]+" "\"jobs\": N" doc_4 "${doc_4}")
if(NOT doc_1 STREQUAL doc_4)
  message(FATAL_ERROR "JSON document differs (beyond the jobs field) between --jobs 1 and --jobs 4 for ${BENCH}")
endif()

# Chunk-forced legs, each compared against the --jobs 1 baseline above.
foreach(chunk 1 7 1000000000)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env BSPLOGP_SWEEP_CHUNK=${chunk}
      "${BENCH}" --smoke --jobs 4
      --json "${WORKDIR}/doc_chunk${chunk}.json"
      --trace "${WORKDIR}/trace_chunk${chunk}.json"
    OUTPUT_VARIABLE stdout_chunk
    ERROR_VARIABLE stderr_chunk
    RESULT_VARIABLE status_chunk)
  if(NOT status_chunk EQUAL 0)
    message(FATAL_ERROR "${BENCH} --jobs 4 (chunk ${chunk}) exited ${status_chunk}:\n${stderr_chunk}")
  endif()
  if(NOT stdout_1 STREQUAL stdout_chunk)
    message(FATAL_ERROR "stdout differs between --jobs 1 and --jobs 4 with BSPLOGP_SWEEP_CHUNK=${chunk} for ${BENCH}")
  endif()
  file(READ "${WORKDIR}/trace_chunk${chunk}.json" trace_chunk)
  if(NOT trace_1 STREQUAL trace_chunk)
    message(FATAL_ERROR "Chrome trace differs under BSPLOGP_SWEEP_CHUNK=${chunk} for ${BENCH}")
  endif()
  file(READ "${WORKDIR}/doc_chunk${chunk}.json" doc_chunk)
  string(REGEX REPLACE "\"jobs\": [0-9]+" "\"jobs\": N" doc_chunk "${doc_chunk}")
  if(NOT doc_1 STREQUAL doc_chunk)
    message(FATAL_ERROR "JSON document differs (beyond the jobs field) under BSPLOGP_SWEEP_CHUNK=${chunk} for ${BENCH}")
  endif()
endforeach()

# --repeat leg: every live grid point is computed twice and the sweep
# aborts unless both evaluations encode byte-identically, so this leg both
# exercises the re-verification path and proves repeats never change a
# byte of output. Compared against the --jobs 1 baseline; the JSON's
# self-describing "repeat" field is neutralized like "jobs".
execute_process(
  COMMAND "${BENCH}" --smoke --jobs 4 --repeat 2
    --json "${WORKDIR}/doc_repeat2.json"
    --trace "${WORKDIR}/trace_repeat2.json"
  OUTPUT_VARIABLE stdout_repeat
  ERROR_VARIABLE stderr_repeat
  RESULT_VARIABLE status_repeat)
if(NOT status_repeat EQUAL 0)
  message(FATAL_ERROR "${BENCH} --repeat 2 exited ${status_repeat}:\n${stderr_repeat}")
endif()
if(NOT stdout_1 STREQUAL stdout_repeat)
  message(FATAL_ERROR "stdout differs between --repeat 1 and --repeat 2 for ${BENCH}")
endif()
file(READ "${WORKDIR}/trace_repeat2.json" trace_repeat)
if(NOT trace_1 STREQUAL trace_repeat)
  message(FATAL_ERROR "Chrome trace differs under --repeat 2 for ${BENCH}")
endif()
file(READ "${WORKDIR}/doc_repeat2.json" doc_repeat)
string(REGEX REPLACE "\"jobs\": [0-9]+" "\"jobs\": N" doc_repeat "${doc_repeat}")
string(REGEX REPLACE "\"repeat\": [0-9]+" "\"repeat\": N" doc_repeat "${doc_repeat}")
string(REGEX REPLACE "\"repeat\": [0-9]+" "\"repeat\": N" doc_1r "${doc_1}")
if(NOT doc_1r STREQUAL doc_repeat)
  message(FATAL_ERROR "JSON document differs (beyond jobs/repeat fields) between --repeat 1 and --repeat 2 for ${BENCH}")
endif()

message(STATUS "jobs determinism OK (jobs 1/4, chunks 1/7/10^9, repeat 2): ${BENCH}")

# Asserts the sweep-cache replay contract (DESIGN.md §10) end to end for
# one bench binary, sharing a cache directory across three runs:
#   1. cold  — every grid point misses and is committed,
#   2. warm  — every grid point hits (hits == the cold run's misses),
#      with byte-identical stdout and byte-identical JSON modulo the
#      self-describing "cache" block,
#   3. flipped build — BSPLOGP_BUILD_ID overridden, so every entry is
#      evicted as stale and recomputed live, and stdout is still
#      byte-identical (a stale cache can slow a run down, never skew it).
#
# Run as a ctest script:
#   cmake -DBENCH=<path-to-binary> -DWORKDIR=<scratch-dir> \
#         -P cmake/cache_replay.cmake
#
# Only pure model-time benches qualify (the same restriction as
# jobs_determinism.cmake); bench/CMakeLists.txt registers the eligible
# binaries.

if(NOT DEFINED BENCH OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DBENCH=<bin> -DWORKDIR=<dir> -P cache_replay.cmake")
endif()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")
set(cache_dir "${WORKDIR}/cache")

# Pulls "H hits, M misses, S stale evictions" out of a run's stderr
# cache summary into <out>_hits / <out>_misses / <out>_stale.
function(parse_cache_summary stderr_text out)
  if(NOT stderr_text MATCHES "cache\\[on\\]: ([0-9]+) hits, ([0-9]+) misses, ([0-9]+) stale evictions")
    message(FATAL_ERROR "no cache summary on stderr:\n${stderr_text}")
  endif()
  set(${out}_hits "${CMAKE_MATCH_1}" PARENT_SCOPE)
  set(${out}_misses "${CMAKE_MATCH_2}" PARENT_SCOPE)
  set(${out}_stale "${CMAKE_MATCH_3}" PARENT_SCOPE)
endfunction()

foreach(leg cold warm flipped)
  set(env_prefix)
  if(leg STREQUAL "flipped")
    set(env_prefix ${CMAKE_COMMAND} -E env BSPLOGP_BUILD_ID=flipped-${leg})
  endif()
  execute_process(
    COMMAND ${env_prefix} "${BENCH}" --smoke --jobs 4
      --cache on --cache-dir "${cache_dir}"
      --json "${WORKDIR}/doc_${leg}.json"
    OUTPUT_VARIABLE stdout_${leg}
    ERROR_VARIABLE stderr_${leg}
    RESULT_VARIABLE status_${leg})
  if(NOT status_${leg} EQUAL 0)
    message(FATAL_ERROR "${BENCH} (${leg}) exited ${status_${leg}}:\n${stderr_${leg}}")
  endif()
  parse_cache_summary("${stderr_${leg}}" ${leg})
endforeach()

# Replay must be invisible on stdout, bytes included.
if(NOT stdout_cold STREQUAL stdout_warm)
  message(FATAL_ERROR "stdout differs between cold and warm cache runs for ${BENCH}")
endif()
if(NOT stdout_cold STREQUAL stdout_flipped)
  message(FATAL_ERROR "stdout differs between cold and flipped-build runs for ${BENCH}")
endif()

# The JSON document self-describes its cache traffic; neutralize that one
# block, then demand byte equality of everything else.
foreach(leg cold warm flipped)
  file(READ "${WORKDIR}/doc_${leg}.json" doc_${leg})
  string(REGEX REPLACE "\"cache\": {[^}]*}" "\"cache\": X"
    doc_${leg} "${doc_${leg}}")
endforeach()
if(NOT doc_cold STREQUAL doc_warm)
  message(FATAL_ERROR "JSON document differs (beyond the cache block) between cold and warm runs for ${BENCH}")
endif()
if(NOT doc_cold STREQUAL doc_flipped)
  message(FATAL_ERROR "JSON document differs (beyond the cache block) between cold and flipped-build runs for ${BENCH}")
endif()

# Cold: nothing to hit, every point committed.
if(NOT cold_hits EQUAL 0 OR cold_misses EQUAL 0 OR NOT cold_stale EQUAL 0)
  message(FATAL_ERROR "cold run expected 0 hits / >0 misses / 0 stale, got ${cold_hits}/${cold_misses}/${cold_stale} for ${BENCH}")
endif()
# Warm: every cold miss replays as a hit, nothing recomputes.
if(NOT warm_hits EQUAL cold_misses OR NOT warm_misses EQUAL 0 OR NOT warm_stale EQUAL 0)
  message(FATAL_ERROR "warm run expected ${cold_misses} hits / 0 misses / 0 stale, got ${warm_hits}/${warm_misses}/${warm_stale} for ${BENCH}")
endif()
# Flipped build: every entry is a dead generation — evicted and recomputed.
if(NOT flipped_stale EQUAL cold_misses OR NOT flipped_misses EQUAL cold_misses OR NOT flipped_hits EQUAL 0)
  message(FATAL_ERROR "flipped-build run expected 0 hits / ${cold_misses} misses / ${cold_misses} stale, got ${flipped_hits}/${flipped_misses}/${flipped_stale} for ${BENCH}")
endif()

message(STATUS "cache replay OK: ${BENCH} (${cold_misses} grid points)")

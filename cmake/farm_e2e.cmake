# Asserts the sweep-farm byte-identity contract (DESIGN.md §13) end to
# end for one bench binary, all on localhost spawn mode:
#   1. base — plain single-host run (--jobs 2), the reference bytes,
#   2. farm — a sweep-server with 2 spawned workers; stdout and JSON
#      must equal the base run byte for byte,
#   3. kill — same farm, but the first worker is crashed mid-sweep via
#      the BSPLOGP_FARM_WORKER_DIE_AFTER hook; the server must re-queue
#      the dead worker's tail (the stderr stats must admit the death)
#      and the merged output must STILL be byte-identical,
#   4. cold/warm — a farm run with the sweep cache cold then warm; the
#      warm run replays every point (hits == cold misses) and matches
#      the base bytes modulo the self-describing "cache" block.
#
# Run as a ctest script:
#   cmake -DBENCH=<path-to-binary> -DWORKDIR=<scratch-dir> \
#         -P cmake/farm_e2e.cmake
#
# Only pure model-time benches qualify (the same restriction as
# jobs_determinism.cmake); bench/CMakeLists.txt registers the eligible
# binaries.

if(NOT DEFINED BENCH OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DBENCH=<bin> -DWORKDIR=<dir> -P farm_e2e.cmake")
endif()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")
set(cache_dir "${WORKDIR}/cache")

# One leg: run ${BENCH} --smoke --jobs 2 <extra bench flags>, optionally
# under one NAME=VALUE env assignment, capturing stdout/stderr/JSON into
# <leg>-suffixed parent-scope variables.
function(run_leg leg env)
  set(prefix)
  if(NOT env STREQUAL "")
    set(prefix ${CMAKE_COMMAND} -E env "${env}")
  endif()
  execute_process(
    COMMAND ${prefix} "${BENCH}" --smoke --jobs 2 ${ARGN}
      --json "${WORKDIR}/doc_${leg}.json"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "${BENCH} (${leg}) exited ${status}:\n${err}")
  endif()
  file(READ "${WORKDIR}/doc_${leg}.json" doc)
  set(stdout_${leg} "${out}" PARENT_SCOPE)
  set(stderr_${leg} "${err}" PARENT_SCOPE)
  set(doc_${leg} "${doc}" PARENT_SCOPE)
endfunction()

function(expect_identical leg)
  if(NOT stdout_base STREQUAL stdout_${leg})
    message(FATAL_ERROR "stdout differs between base and ${leg} runs for ${BENCH}")
  endif()
  if(NOT doc_base STREQUAL doc_${leg})
    message(FATAL_ERROR "JSON document differs between base and ${leg} runs for ${BENCH}")
  endif()
endfunction()

run_leg(base "")
run_leg(farm "" --farm 2,timeout=30)
expect_identical(farm)

# Crash every spawned worker after its first RESULT (the unprefixed hook
# form — the smoke grid is small enough that pinning one worker index
# races against the other worker finishing the sweep alone). Each death
# re-queues the tail; respawns and finally the local-fallback path mop
# up, with no trace on stdout.
run_leg(kill "BSPLOGP_FARM_WORKER_DIE_AFTER=1" --farm 2,timeout=30,grace=2)
expect_identical(kill)
if(NOT stderr_kill MATCHES "([0-9]+) deaths" OR CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "kill leg never killed a worker (stderr stats):\n${stderr_kill}")
endif()

# Farm + sweep cache: cold commits every point, warm replays every one,
# and both still match the base bytes (modulo the cache counter block).
run_leg(cold "" --farm 2,timeout=30 --cache on --cache-dir "${cache_dir}")
run_leg(warm "" --farm 2,timeout=30 --cache on --cache-dir "${cache_dir}")
if(NOT stdout_base STREQUAL stdout_cold OR NOT stdout_base STREQUAL stdout_warm)
  message(FATAL_ERROR "stdout differs between base and cached farm runs for ${BENCH}")
endif()
if(NOT stderr_cold MATCHES "cache\\[on\\]: 0 hits, ([0-9]+) misses")
  message(FATAL_ERROR "cold farm run did not miss cleanly:\n${stderr_cold}")
endif()
set(cold_misses "${CMAKE_MATCH_1}")
if(NOT stderr_warm MATCHES "cache\\[on\\]: ${cold_misses} hits, 0 misses")
  message(FATAL_ERROR "warm farm run did not replay all ${cold_misses} points:\n${stderr_warm}")
endif()
foreach(leg base cold warm)
  string(REGEX REPLACE "\"cache\": {[^}]*}" "\"cache\": X"
    doc_${leg} "${doc_${leg}}")
endforeach()
if(NOT doc_base STREQUAL doc_cold OR NOT doc_base STREQUAL doc_warm)
  message(FATAL_ERROR "JSON document differs (beyond the cache block) between base and cached farm runs for ${BENCH}")
endif()

message(STATUS "farm e2e OK: ${BENCH}")

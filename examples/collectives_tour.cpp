// A tour of the LogP collective library (Section 4.1 and the Karp-et-al
// algorithms the paper cites): CB, barrier, tree and greedy broadcast,
// time-reversed reduction, prefix scan, scatter and gather — each with its
// exact model-time cost on the same machine.
#include <iostream>

#include "src/algo/logp_broadcast_opt.h"
#include "src/algo/logp_collectives.h"
#include "src/algo/mailbox.h"
#include "src/core/table.h"
#include "src/logp/machine.h"
#include "src/workload/workload.h"

using namespace bsplogp;

namespace {

struct Row {
  std::string name;
  Time time = 0;
  std::int64_t messages = 0;
  bool stall_free = true;
  std::string result;
};

template <typename MakeProgs>
Row run(const std::string& name, ProcId p, const logp::Params& prm,
        MakeProgs make, std::string result) {
  logp::Machine m(p, prm);
  const logp::RunStats st = m.run(make());
  return Row{name, st.finish_time, st.messages, st.stall_free(),
             std::move(result)};
}

}  // namespace

int main() {
  const ProcId p = 64;
  const logp::Params prm{16, 1, 4};  // capacity 4
  std::cout << "LogP collectives on p=" << p << ", L=16 o=1 G=4\n\n";

  const algo::BroadcastSchedule sched =
      algo::optimal_broadcast_schedule(p, prm);
  std::vector<Row> rows;

  std::vector<Word> cb_results;
  rows.push_back(run("combine_broadcast (sum)", p, prm, [&] {
    // The registry's cb-rounds family, contribution i+1 per processor.
    return workload::cb_rounds(
        p, /*rounds=*/1, algo::ReduceOp::Sum,
        [](ProcId i) { return static_cast<Word>(i) + 1; }, &cb_results);
  }, "sum 1..64 = 2080"));

  rows.push_back(run("barrier", p, prm, [&] {
    std::vector<logp::ProgramFn> progs;
    for (ProcId i = 0; i < p; ++i)
      progs.emplace_back([i](logp::Proc& pr) -> logp::Task<> {
        co_await pr.compute((i * 13) % 50);  // staggered joins
        algo::Mailbox mb(pr);
        co_await algo::barrier(mb);
      });
    return progs;
  }, "releases after last join"));

  rows.push_back(run("tree_broadcast", p, prm, [&] {
    std::vector<logp::ProgramFn> progs;
    for (ProcId i = 0; i < p; ++i)
      progs.emplace_back([i](logp::Proc& pr) -> logp::Task<> {
        algo::Mailbox mb(pr);
        (void)co_await algo::tree_broadcast(mb, i == 0 ? 42 : 0);
      });
    return progs;
  }, "42 everywhere"));

  rows.push_back(run("broadcast_opt (greedy)", p, prm, [&] {
    std::vector<logp::ProgramFn> progs;
    for (ProcId i = 0; i < p; ++i)
      progs.emplace_back([i, &sched](logp::Proc& pr) -> logp::Task<> {
        algo::Mailbox mb(pr);
        (void)co_await algo::broadcast_opt(mb, i == 0 ? 42 : 0, sched);
      });
    return progs;
  }, "42 everywhere"));

  rows.push_back(run("reduce_opt (reversed greedy)", p, prm, [&] {
    std::vector<logp::ProgramFn> progs;
    for (ProcId i = 0; i < p; ++i)
      progs.emplace_back([i, &sched](logp::Proc& pr) -> logp::Task<> {
        algo::Mailbox mb(pr);
        (void)co_await algo::reduce_opt(mb, i + 1, algo::ReduceOp::Sum,
                                        sched);
      });
    return progs;
  }, "2080 at the root"));

  rows.push_back(run("prefix_scan (sum)", p, prm, [&] {
    std::vector<logp::ProgramFn> progs;
    for (ProcId i = 0; i < p; ++i)
      progs.emplace_back([i](logp::Proc& pr) -> logp::Task<> {
        algo::Mailbox mb(pr);
        (void)co_await algo::prefix_scan(mb, i + 1, algo::ReduceOp::Sum);
      });
    return progs;
  }, "proc i gets (i+1)(i+2)/2"));

  std::vector<Word> values(static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i)
    values[static_cast<std::size_t>(i)] = 100 + i;
  rows.push_back(run("scatter", p, prm, [&] {
    std::vector<logp::ProgramFn> progs;
    for (ProcId i = 0; i < p; ++i)
      progs.emplace_back([&values](logp::Proc& pr) -> logp::Task<> {
        algo::Mailbox mb(pr);
        (void)co_await algo::scatter(mb, values);
      });
    return progs;
  }, "proc i gets 100+i"));

  rows.push_back(run("gather (staggered)", p, prm, [&] {
    std::vector<logp::ProgramFn> progs;
    for (ProcId i = 0; i < p; ++i)
      progs.emplace_back([i](logp::Proc& pr) -> logp::Task<> {
        algo::Mailbox mb(pr);
        (void)co_await algo::gather(mb, i, /*start=*/0);
      });
    return progs;
  }, "root collects 0..63"));

  rows.push_back(run("gather (burst, stalls)", p, prm, [&] {
    std::vector<logp::ProgramFn> progs;
    for (ProcId i = 0; i < p; ++i)
      progs.emplace_back([i](logp::Proc& pr) -> logp::Task<> {
        algo::Mailbox mb(pr);
        (void)co_await algo::gather(mb, i);
      });
    return progs;
  }, "same data, Stalling Rule pays"));

  core::Table table({"collective", "model time", "messages", "stall-free",
                     "result"});
  for (const Row& r : rows)
    table.add_row({r.name, core::fmt(r.time), core::fmt(r.messages),
                   r.stall_free ? "yes" : "no", r.result});
  table.print(std::cout);
  std::cout << "\nCB sanity: " << cb_results.front() << " (expect 2080); "
            << "T_CB bound (Prop. 2 shape): "
            << algo::cb_time_bound(prm, p) << "\n";
  return 0;
}

// Quickstart: write and run one program on each model.
//
//   1. BSP (Section 2.1): a parallel prefix sum over p processors, with the
//      machine's exact cost accounting  T = sum_s (w_s + g*h_s + l).
//   2. LogP (Section 2.2): a Combine-and-Broadcast (Section 4.1) under the
//      (L, o, G) timing rules, with stall/capacity statistics.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "src/algo/bsp_algorithms.h"
#include "src/algo/logp_collectives.h"
#include "src/bsp/machine.h"
#include "src/logp/machine.h"
#include "src/workload/workload.h"

using namespace bsplogp;

namespace {

void run_bsp() {
  const ProcId p = 16;
  const bsp::Params params{/*g=*/4, /*l=*/32};

  std::vector<Word> input(static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i) input[static_cast<std::size_t>(i)] = i + 1;

  std::vector<Word> prefix;
  const auto programs =
      algo::bsp_prefix_scan(p, input, algo::ReduceOp::Sum, prefix);

  bsp::Machine machine(p, params);
  const bsp::RunStats stats = machine.run(programs);

  std::cout << "[BSP]  prefix-sum of 1..16 on p=16, g=4, l=32\n"
            << "       last prefix   = " << prefix.back() << " (expect 136)\n"
            << "       supersteps    = " << stats.supersteps << "\n"
            << "       messages      = " << stats.messages << "\n"
            << "       model time    = " << stats.finish_time << " steps\n";
  std::cout << "       per superstep (w, h, cost):";
  for (const auto& ss : stats.trace)
    std::cout << " (" << ss.w << "," << ss.h << "," << ss.total(params)
              << ")";
  std::cout << "\n\n";
}

void run_logp() {
  const ProcId p = 16;
  const logp::Params params{/*L=*/16, /*o=*/2, /*G=*/4};

  // Each processor contributes i+1; everyone learns the global max.
  // The CB family comes from the workload registry (src/workload) — the
  // same single definition every bench and test uses.
  std::vector<Word> result;
  const auto programs = workload::cb_rounds(
      p, /*rounds=*/1, algo::ReduceOp::Max,
      [](ProcId i) { return static_cast<Word>(i) + 1; }, &result);

  logp::Machine machine(p, params);
  const logp::RunStats stats = machine.run(programs);

  std::cout << "[LogP] combine-and-broadcast(max) on p=16, L=16, o=2, G=4\n"
            << "       result        = " << result[0] << " (expect 16)\n"
            << "       completion    = " << stats.finish_time << " steps\n"
            << "       T_CB bound    = " << algo::cb_time_bound(params, p)
            << " (Proposition 2 shape)\n"
            << "       messages      = " << stats.messages << "\n"
            << "       stall-free    = " << (stats.stall_free() ? "yes" : "no")
            << "  (CB is stall-free by construction)\n"
            << "       max in-transit/dest = " << stats.max_in_transit
            << " (capacity " << params.capacity() << ")\n";
}

}  // namespace

int main() {
  std::cout << "bsplogp quickstart: one program on each model\n\n";
  run_bsp();
  run_logp();
  return 0;
}

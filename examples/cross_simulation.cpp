// The paper's headline results, end to end:
//
//   Theorem 1 — a LogP program (an all-to-all exchange) runs natively on
//   the LogP machine and then, unmodified, under the BSP cycle simulation;
//   the measured slowdown is compared with the predicted O(1 + g/G + l/L).
//
//   Theorem 2 — a BSP program (odd-even block sort) runs natively on the
//   BSP machine and then, unmodified, on the LogP machine through the
//   CB-synchronize / sort / clocked-cycles protocol; the report shows the
//   per-superstep (r, s, h) and certifies the run was stall-free.
#include <iostream>

#include "src/algo/bsp_algorithms.h"
#include "src/bsp/machine.h"
#include "src/core/rng.h"
#include "src/logp/machine.h"
#include "src/workload/workload.h"
#include "src/xsim/bsp_on_logp.h"
#include "src/xsim/logp_on_bsp.h"

using namespace bsplogp;

namespace {

void theorem1() {
  const ProcId p = 16;
  const logp::Params logp_params{16, 1, 4};
  std::cout << "== Theorem 1: stall-free LogP on BSP ==\n"
            << "workload: all-to-all exchange, p=" << p << ", L=16 o=1 G=4\n";

  std::vector<Word> native;
  logp::Machine machine(p, logp_params);
  const auto native_stats = machine.run(workload::all_to_all(p, &native));
  std::cout << "native LogP time       = " << native_stats.finish_time
            << "\n";

  for (const Time g_ratio : {1, 4}) {
    for (const Time l_ratio : {1, 4}) {
      std::vector<Word> sims;
      xsim::LogpOnBspOptions opt;
      opt.bsp = bsp::Params{g_ratio * logp_params.G,
                            l_ratio * logp_params.L};
      xsim::LogpOnBsp sim(p, logp_params, opt);
      const auto rep = sim.run(workload::all_to_all(p, &sims));
      std::cout << "BSP host g=" << opt.bsp.g << " l=" << opt.bsp.l
                << ": results match=" << (sims == native ? "yes" : "NO")
                << "  capacity-ok=" << (rep.capacity_ok ? "yes" : "NO")
                << "  BSP time=" << rep.bsp.finish_time
                << "  slowdown=" << rep.slowdown() << "  predicted O("
                << xsim::predicted_slowdown_thm1(logp_params, opt.bsp)
                << ")\n";
    }
  }
  std::cout << "\n";
}

void theorem2() {
  const ProcId p = 8;
  const std::size_t block = 16;
  const logp::Params logp_params{16, 1, 4};
  std::cout << "== Theorem 2: BSP on stall-free LogP ==\n"
            << "workload: odd-even block sort, p=" << p << ", " << block
            << " keys/processor, L=16 o=1 G=4\n";

  core::Rng rng(2026);
  const auto blocks = workload::random_blocks(p, block, -999, 999, rng);

  std::vector<std::vector<Word>> native_out;
  auto native_progs = algo::bsp_odd_even_sort(p, blocks, native_out);
  bsp::Machine native(p, bsp::Params{logp_params.G, logp_params.L});
  const auto native_stats = native.run(native_progs);

  std::vector<std::vector<Word>> sim_out;
  auto sim_progs = algo::bsp_odd_even_sort(p, blocks, sim_out);
  xsim::BspOnLogp sim(p, logp_params);
  const auto rep = sim.run(sim_progs);

  std::cout << "results match native   = "
            << (sim_out == native_out ? "yes" : "NO") << "\n"
            << "native BSP time (g=G,l=L) = " << native_stats.finish_time << "\n"
            << "simulated LogP time    = " << rep.logp.finish_time << "\n"
            << "slowdown               = " << rep.slowdown(logp_params)
            << "  (Theorem 2: O(S(L,G,p,h)), at most O(log p))\n"
            << "stall-free             = "
            << (rep.logp.stall_free() ? "yes" : "NO")
            << "   schedule violations = " << rep.schedule_violations << "\n"
            << "supersteps             = " << rep.supersteps << "\n";
  std::cout << "per-superstep (r, s, h):";
  for (const auto& st : rep.steps)
    std::cout << " (" << st.r << "," << st.s << "," << st.h << ")";
  std::cout << "\n";
}

}  // namespace

int main() {
  theorem1();
  theorem2();
  return 0;
}

// The Section-2.2 stalling discussion, made executable.
//
// All-to-one traffic exceeds the capacity constraint, so the Stalling Rule
// kicks in: senders lose CPU cycles stalling, but the hot spot keeps
// draining at the full bandwidth of one message every G steps. The paper
// observes that this makes stalling *efficient* for workloads whose core
// is the fan-in itself: we compare the naive stalling program against a
// carefully staged stall-free program (each sender waits for its own
// G-aligned slot) and show both finish in ~ o + nG + L time — i.e. the
// model does not penalize stalling here, it only burns the senders' time.
#include <iostream>

#include "src/core/table.h"
#include "src/logp/machine.h"

using namespace bsplogp;

namespace {

struct Outcome {
  Time finish = 0;
  std::int64_t stalls = 0;
  Time stall_time = 0;
};

Outcome run_hotspot(ProcId p, logp::Params prm, bool staged) {
  std::vector<logp::ProgramFn> progs;
  progs.emplace_back([p](logp::Proc& pr) -> logp::Task<> {
    for (ProcId k = 1; k < p; ++k) (void)co_await pr.recv();
  });
  for (ProcId i = 1; i < p; ++i)
    progs.emplace_back([i, staged](logp::Proc& pr) -> logp::Task<> {
      if (staged) {
        // Stall-free discipline: sender i owns the G-slot i; at most
        // capacity messages are ever in transit to the hot spot.
        const Time slot = static_cast<Time>(i) * pr.params().G;
        co_await pr.wait_until(slot - pr.params().o);
      }
      co_await pr.send(0, i);
    });
  logp::Machine machine(p, prm);
  const logp::RunStats st = machine.run(progs);
  return Outcome{st.finish_time, st.stall_events, st.stall_time_total};
}

}  // namespace

int main() {
  const logp::Params prm{16, 1, 4};  // capacity 4
  std::cout << "hot spot: p-1 senders -> processor 0, L=16 o=1 G=4 "
               "(capacity 4)\n\n";

  core::Table table({"p", "n=p-1", "o+nG+L (bandwidth bound)",
                     "stalling: time", "stalls", "stall steps",
                     "staged: time", "stalls"});
  for (const ProcId p : {9, 17, 33, 65, 129}) {
    const auto naive = run_hotspot(p, prm, /*staged=*/false);
    const auto staged = run_hotspot(p, prm, /*staged=*/true);
    const Time n = p - 1;
    table.add_row({core::fmt(static_cast<std::int64_t>(p)), core::fmt(n),
                   core::fmt(prm.o + n * prm.G + prm.L),
                   core::fmt(naive.finish), core::fmt(naive.stalls),
                   core::fmt(naive.stall_time), core::fmt(staged.finish),
                   core::fmt(staged.stalls)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the stalling run finishes as fast as the staged "
         "stall-free run\n"
         "(both track o + nG + L): under the Stalling Rule the hot spot "
         "drains at\n"
         "rate 1/G, so the LogP cost model can actually *reward* stalling "
         "— senders\n"
         "pay with stalled cycles (column 'stall steps'), nothing else. "
         "This is the\n"
         "anomaly Section 2.2 flags for further investigation.\n";
  return 0;
}

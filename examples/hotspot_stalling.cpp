// The Section-2.2 stalling discussion, made executable.
//
// All-to-one traffic exceeds the capacity constraint, so the Stalling Rule
// kicks in: senders lose CPU cycles stalling, but the hot spot keeps
// draining at the full bandwidth of one message every G steps. The paper
// observes that this makes stalling *efficient* for workloads whose core
// is the fan-in itself: we compare the naive stalling program against a
// carefully staged stall-free program (each sender waits for its own
// G-aligned slot) and show both finish in ~ o + nG + L time — i.e. the
// model does not penalize stalling here, it only burns the senders' time.
//
// With `--trace <path>` the runs are recorded through the src/trace
// observer API: a ChromeTraceSink writes a Perfetto-loadable timeline
// (stall spans, deliveries, inbox depth per processor) and an
// InvariantSink re-checks the capacity constraint and the
// one-delivery-per-destination-per-step rule from the same event stream.
#include <iostream>
#include <string>

#include "src/core/table.h"
#include "src/logp/machine.h"
#include "src/trace/chrome_sink.h"
#include "src/trace/invariant_sink.h"
#include "src/workload/workload.h"

using namespace bsplogp;

namespace {

struct Outcome {
  Time finish = 0;
  std::int64_t stalls = 0;
  Time stall_time = 0;
};

Outcome run_hotspot(ProcId p, logp::Params prm, bool staged,
                    trace::TraceSink* sink) {
  logp::Machine::Options opt;
  opt.sink = sink;
  logp::Machine machine(p, prm, opt);
  // The registry's hotspot family: k=1 fan-in; staged=true is the
  // stall-free discipline where sender i owns the G-aligned slot i.
  const logp::RunStats st =
      machine.run(workload::hotspot(p, /*k=*/1, staged));
  return Outcome{st.finish_time, st.stall_events, st.stall_time_total};
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--trace") trace_path = argv[i + 1];

  // Observers are optional: null means the engine runs its production
  // (zero-emission) path. The invariant checker rides the same stream as
  // the Chrome exporter through a TeeSink.
  trace::ChromeTraceSink chrome;
  trace::InvariantSink invariants;
  trace::TeeSink tee;
  tee.add(&chrome);
  tee.add(&invariants);
  trace::TraceSink* sink = trace_path.empty() ? nullptr : &tee;

  const logp::Params prm{16, 1, 4};  // capacity 4
  std::cout << "hot spot: p-1 senders -> processor 0, L=16 o=1 G=4 "
               "(capacity 4)\n\n";

  core::Table table({"p", "n=p-1", "o+nG+L (bandwidth bound)",
                     "stalling: time", "stalls", "stall steps",
                     "staged: time", "stalls"});
  for (const ProcId p : {9, 17, 33, 65, 129}) {
    const auto naive = run_hotspot(p, prm, /*staged=*/false, sink);
    const auto staged = run_hotspot(p, prm, /*staged=*/true, sink);
    const Time n = p - 1;
    table.add_row({core::fmt(static_cast<std::int64_t>(p)), core::fmt(n),
                   core::fmt(prm.o + n * prm.G + prm.L),
                   core::fmt(naive.finish), core::fmt(naive.stalls),
                   core::fmt(naive.stall_time), core::fmt(staged.finish),
                   core::fmt(staged.stalls)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the stalling run finishes as fast as the staged "
         "stall-free run\n"
         "(both track o + nG + L): under the Stalling Rule the hot spot "
         "drains at\n"
         "rate 1/G, so the LogP cost model can actually *reward* stalling "
         "— senders\n"
         "pay with stalled cycles (column 'stall steps'), nothing else. "
         "This is the\n"
         "anomaly Section 2.2 flags for further investigation.\n";

  if (sink != nullptr) {
    if (!chrome.write_file(trace_path)) {
      std::cerr << "cannot write trace to " << trace_path << "\n";
      return 1;
    }
    std::cout << "\ntrace: " << chrome.event_rows() << " events over "
              << chrome.runs() << " runs -> " << trace_path
              << " (open in ui.perfetto.dev)\n"
              << "invariants: "
              << (invariants.ok() ? "ok"
                                  : std::to_string(invariants.violations()) +
                                        " violation(s)")
              << " (capacity, one delivery per destination per step)\n";
    if (!invariants.ok()) {
      for (const auto& m : invariants.messages()) std::cerr << m << "\n";
      return 1;
    }
  }
  return 0;
}

// Section 5 in action: measure a topology's bandwidth/latency parameters
// by routing random h-relations on the packet-level network simulator and
// fitting T(h) = gamma_hat * h + delta_hat, then compare against the
// paper's Table 1 entries.
//
// Usage: topology_params [kind] [p]
//   kind in {ring, mesh2d, mesh3d, hypercube-multi, hypercube-single,
//            butterfly, ccc, shuffle-exchange, mesh-of-trees}; default
//            mesh2d 64.
#include <iostream>
#include <string>

#include "src/core/table.h"
#include "src/net/packet_sim.h"
#include "src/net/topology.h"

using namespace bsplogp;

namespace {

net::TopologyKind parse_kind(const std::string& name) {
  using net::TopologyKind;
  for (const auto kind :
       {TopologyKind::Ring, TopologyKind::Mesh2D, TopologyKind::Mesh3D,
        TopologyKind::HypercubeMulti, TopologyKind::HypercubeSingle,
        TopologyKind::Butterfly, TopologyKind::CubeConnectedCycles,
        TopologyKind::ShuffleExchange, TopologyKind::MeshOfTrees})
    if (net::to_string(kind) == name) return kind;
  std::cerr << "unknown topology '" << name << "', using mesh2d\n";
  return TopologyKind::Mesh2D;
}

}  // namespace

int main(int argc, char** argv) {
  const net::TopologyKind kind =
      argc > 1 ? parse_kind(argv[1]) : net::TopologyKind::Mesh2D;
  const ProcId p = argc > 2 ? static_cast<ProcId>(std::stoi(argv[2])) : 64;

  const net::Topology topo = net::make_topology(kind, p);
  std::cout << "topology " << net::to_string(kind) << ": " << topo.nprocs()
            << " processors, " << topo.size() << " nodes, diameter "
            << topo.diameter() << ", max degree " << topo.max_degree()
            << "\n\n";

  const net::PacketSim sim(topo);
  const std::vector<Time> hs{1, 2, 4, 8, 16, 32};
  const net::ParamFit fit = net::fit_route_params(sim, hs, 4, 12345);

  core::Table table({"h", "mean route steps"});
  for (const auto& [h, steps] : fit.samples)
    table.add_row({core::fmt(h), core::fmt(steps, 1)});
  table.print(std::cout);

  std::cout << "\nfit T(h) = gamma*h + delta  (r^2 = "
            << core::fmt(fit.fit.r_squared, 4) << ")\n"
            << "  gamma_hat = " << core::fmt(fit.gamma_hat(), 2)
            << "   (Table 1 analytic gamma ~ "
            << core::fmt(topo.analytic_gamma(), 2) << ")\n"
            << "  delta_hat = " << core::fmt(fit.delta_hat(), 2)
            << "   (Table 1 analytic delta ~ "
            << core::fmt(topo.analytic_delta(), 2) << ")\n"
            << "\nBest attainable model parameters on this machine "
               "(Section 5):\n"
            << "  BSP:  g* ~ gamma, l* ~ delta\n"
            << "  LogP: G* ~ gamma, L* ~ gamma + delta  (Observation 1)\n";
  return 0;
}
